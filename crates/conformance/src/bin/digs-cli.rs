//! `digs-cli` — run DiGS / Orchestra networks and the conformance gate
//! from the command line.
//!
//! ```text
//! digs-cli run [--topology T] [--protocol P] [--secs N] [--flows N]
//!              [--period-ms N] [--jammers N] [--adaptive-jam START]
//!              [--randomize SECRET] [--seed N] [--json]
//! digs-cli topology [--topology T]
//! digs-cli graph [--topology T] [--protocol P] [--secs N] [--seed N]
//! digs-cli manager [--topology T] [--flows N]
//! digs-cli trace journeys [--min-complete N] [run options...]
//! digs-cli trace churn    [run options...]
//! digs-cli trace dump     [run options...]
//! digs-cli telemetry export [--format jsonl|csv] [--epoch-slots N]
//!               [--cap N] [--jam START:END] [run options...]
//! digs-cli telemetry report [same options...]
//! digs-cli telemetry top    [same options...]
//! digs-cli gate [--matrix small|full] [--seeds SPEC] [--secs N]
//!               [--jobs N] [--goldens DIR] [--bless] [--json]
//!               [--summary FILE] [--inject-loss SUBSTR]
//! digs-cli fleet run [--template oil|factory|mixed] [--networks N]
//!               [--seed-base N] [--secs N] [--jobs N]
//!               [--sharded-devices N] [--shard-size N] [--sharded-seed N]
//!               [--report FILE] [--inject-loss SUBSTR] [--json]
//! digs-cli fleet report --input FILE [--json]
//! ```
//!
//! The `trace` commands run a network with the flight recorder enabled
//! (`--trace-cap` events per node, default 65536) and analyse the event
//! stream: `journeys` reconstructs hop-by-hop packet journeys and prints
//! the latency breakdown, `churn` prints the parent-churn/repair timeline,
//! and `dump` writes the raw events as JSONL to stdout.
//!
//! `--adaptive-jam START` drops one adaptive schedule-learning jammer
//! next to every access point, switching on at `START` seconds (it then
//! sniffs for 30 s before selectively jamming the busiest cells).
//! `--randomize SECRET` enables the DiGS schedule-randomization defense
//! with the given shared secret (0 = off). Both work with every
//! run-flavored command, so `run`, `trace`, and `telemetry` can stage the
//! attack, the defense, or the duel.
//!
//! The `telemetry` commands run a network with epoch sampling enabled
//! (`--epoch-slots` per epoch, default 1000 = 10 s) and the health
//! monitor armed: `export` writes the per-epoch series as deterministic
//! JSONL (or CSV with `--format csv`), `report` prints a per-epoch table
//! with a PDR sparkline and the alert log, and `top` live-refreshes a
//! terminal dashboard while the scenario runs. `--jam START:END` drops a
//! full-band high-power WiFi jammer cluster on every access point for the
//! given window (seconds) — the canonical fault-injection smoke.
//!
//! `fleet run` stamps out a fleet of independent template networks
//! (`--template mixed` alternates oil-field and factory-floor), plus an
//! optional spatially sharded large network (`--sharded-devices`,
//! `--shard-size` devices per shard), fans them over the worker pool,
//! and aggregates the per-network telemetry into one fleet SLO report.
//! `--report FILE` writes the canonical JSON form (deterministic bytes —
//! wall-clock timings are excluded), `fleet report --input FILE`
//! re-renders a saved report, and `--inject-loss SUBSTR` halves the
//! delivery metrics of matching networks to demonstrate the SLO gate
//! tripping. Worker count: `--jobs`, else `DIGS_FLEET_JOBS`, else one
//! per core. Exit status: 0 when every SLO holds, 1 on a breach.
//!
//! `gate` runs the conformance matrix in parallel and compares the
//! per-scenario aggregates against `goldens/<matrix>.json` with the
//! checked-in tolerance bands; `--bless` regenerates the baseline.
//! `--seeds` takes `8` (seeds 1–8), `3-10`, or `1,4,9`. `--inject-loss`
//! is a test hook that halves delivery metrics of matching scenarios to
//! demonstrate the gate tripping. Exit status: 0 pass, 1 breach or error.
//!
//! Topologies: `testbed-a` (default), `testbed-a-half`, `testbed-b`,
//! `testbed-b-half`, `cooja`, or `random:<devices>:<side-m>`.

use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs_sim::interference::Jammer;
use digs_sim::position::Position;
use digs_sim::rf::{Dbm, RfConfig};
use digs_sim::time::Asn;
use digs_sim::topology::Topology;
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Args {
    command: String,
    /// Positional word after the command (`trace journeys|churn|dump`).
    subcommand: Option<String>,
    options: BTreeMap<String, String>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let command = argv.get(i).cloned().ok_or_else(usage)?;
    i += 1;
    let subcommand = match argv.get(i) {
        Some(word) if !word.starts_with("--") => {
            i += 1;
            Some(word.clone())
        }
        _ => None,
    };
    let mut options = BTreeMap::new();
    let mut json = false;
    while i < argv.len() {
        let flag = &argv[i];
        i += 1;
        if flag == "--json" {
            json = true;
            continue;
        }
        if flag == "--bless" {
            options.insert("bless".to_string(), "true".to_string());
            continue;
        }
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument `{flag}`\n{}", usage()))?;
        let value = argv.get(i).cloned().ok_or_else(|| format!("flag --{name} needs a value"))?;
        i += 1;
        options.insert(name.to_string(), value);
    }
    Ok(Args { command, subcommand, options, json })
}

fn usage() -> String {
    "usage: digs-cli <run|topology|graph|manager|trace|telemetry|gate|fleet> [--topology T] \
     [--protocol P] [--secs N] [--flows N] [--period-ms N] [--jammers N] \
     [--adaptive-jam START] [--randomize SECRET] [--seed N] [--json]\n\
     trace subcommands: journeys [--min-complete N] | churn | dump  \
     (plus --trace-cap N, default 65536)\n\
     telemetry subcommands: export [--format jsonl|csv] | report | top  \
     (plus --epoch-slots N, --cap N, --jam START:END)\n\
     gate: [--matrix small|full] [--seeds SPEC] [--secs N] [--jobs N] \
     [--goldens DIR] [--bless] [--summary FILE] [--inject-loss SUBSTR]\n\
     fleet subcommands: run [--template oil|factory|mixed] [--networks N] \
     [--seed-base N] [--secs N] [--jobs N] [--sharded-devices N] [--shard-size N] \
     [--sharded-seed N] [--report FILE] [--inject-loss SUBSTR] | report --input FILE"
        .to_string()
}

fn topology_from(name: &str) -> Result<Topology, String> {
    match name {
        "testbed-a" => Ok(Topology::testbed_a()),
        "testbed-a-half" => Ok(Topology::testbed_a_half()),
        "testbed-b" => Ok(Topology::testbed_b()),
        "testbed-b-half" => Ok(Topology::testbed_b_half()),
        "cooja" => Ok(Topology::cooja_150(7)),
        other => {
            if let Some(spec) = other.strip_prefix("random:") {
                let parts: Vec<&str> = spec.split(':').collect();
                if parts.len() != 2 {
                    return Err("random topology spec is random:<devices>:<side-m>".into());
                }
                let n: usize = parts[0].parse().map_err(|e| format!("bad device count: {e}"))?;
                let side: f64 = parts[1].parse().map_err(|e| format!("bad side length: {e}"))?;
                Ok(Topology::random_area(n, side, 7))
            } else {
                Err(format!("unknown topology `{other}`"))
            }
        }
    }
}

fn get<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match args.options.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
    }
}

/// Extra wiring the telemetry commands need on top of the common run
/// options.
#[derive(Default)]
struct BuildExtras {
    trace_cap: Option<usize>,
    /// `(epoch_slots, cap)` — enables telemetry sampling.
    telemetry: Option<(u64, usize)>,
    /// `(start_secs, end_secs)` — full-band jammer clusters on every
    /// access point (WiFi channels 1/5/9/13 blanket all 16 channels).
    jam: Option<(u64, u64)>,
}

fn build_network(args: &Args, extras: BuildExtras) -> Result<Network, String> {
    let topology = topology_from(args.options.get("topology").map_or("testbed-a", String::as_str))?;
    let protocol = match args.options.get("protocol").map_or("digs", String::as_str) {
        "digs" => Protocol::Digs,
        "orchestra" => Protocol::Orchestra,
        "wirelesshart" => Protocol::WirelessHart,
        other => return Err(format!("unknown protocol `{other}` (digs|orchestra|wirelesshart)")),
    };
    let seed: u64 = get(args, "seed", 1)?;
    let flows: usize = get(args, "flows", 4)?;
    let period_ms: u64 = get(args, "period-ms", 5000)?;
    let jammers: usize = get(args, "jammers", 0)?;

    let rf = if topology.name().starts_with("random") || topology.name().starts_with("cooja") {
        RfConfig::open_area()
    } else {
        RfConfig::indoor()
    };
    let ap_positions: Vec<Position> =
        topology.access_points().iter().map(|ap| topology.position(*ap)).collect();
    let mut builder = NetworkConfig::builder(topology)
        .protocol(protocol)
        .rf(rf)
        .seed(seed)
        .random_flows(flows, period_ms / 10, seed);
    if let Some(cap) = extras.trace_cap {
        builder = builder.trace_cap(cap);
    }
    if let Some((epoch_slots, cap)) = extras.telemetry {
        builder = builder.telemetry_epoch(epoch_slots).telemetry_cap(cap);
    }
    for i in 0..jammers {
        let pos = Position::new(12.0 + 14.0 * i as f64, 8.0 + 5.0 * i as f64);
        builder = builder.jammer(Jammer::wifi(pos, [1u8, 6, 11][i % 3], Asn::from_secs(60)));
    }
    if let Some(start) = args.options.get("adaptive-jam") {
        let start: u64 = start.parse().map_err(|e| format!("bad --adaptive-jam: {e}"))?;
        let app_len = digs_scheduling::SlotframeLengths::paper().app;
        for (i, pos) in ap_positions.iter().enumerate() {
            builder = builder.jammer(Jammer::adaptive(
                Position::new(pos.x + 2.0, pos.y + 2.0),
                app_len,
                Asn::from_secs(start),
                0xada9 ^ ((i as u64) << 8),
            ));
        }
    }
    if let Some(secret) = args.options.get("randomize") {
        let secret: u64 = secret.parse().map_err(|e| format!("bad --randomize: {e}"))?;
        builder = builder.randomize(secret);
    }
    if let Some((start, end)) = extras.jam {
        if end <= start {
            return Err(format!("--jam window must have START < END, got {start}:{end}"));
        }
        // Four WiFi channels spaced 20 MHz apart blanket all sixteen
        // 802.15.4 channels — hopping cannot escape this cluster. One
        // cluster per access point: with a single AP jammed the routing
        // layer fails over to the other AP (the paper's redundancy doing
        // its job) and delivery barely dips. Elevated power so the
        // interference floor also buries last-hop relays, and distinct
        // salts so the clusters' idle slots do not line up.
        for (i, pos) in ap_positions.iter().enumerate() {
            for (k, wifi_ch) in [1u8, 5, 9, 13].into_iter().enumerate() {
                let mut j =
                    Jammer::wifi(*pos, wifi_ch, Asn::from_secs(start)).until(Asn::from_secs(end));
                j.tx_power = Dbm(24.0);
                j.salt = 0x9a7 ^ ((i as u64) << 8) ^ k as u64;
                builder = builder.jammer(j);
            }
        }
    }
    Ok(Network::new(builder.build()))
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let secs: u64 = get(args, "secs", 300)?;
    let mut network = build_network(args, BuildExtras::default())?;
    network.run_secs(secs);
    let results = network.results();
    if args.json {
        let out = serde_json::to_string_pretty(&results)
            .map_err(|e| format!("serialization failed: {e}"))?;
        println!("{out}");
        return Ok(());
    }
    println!("protocol        : {}", network.config().protocol.name());
    println!("topology        : {}", network.config().topology.name());
    println!("simulated       : {secs} s");
    println!("joined fraction : {:.3}", results.fraction_joined());
    println!("network PDR     : {:.3}", results.network_pdr());
    println!("worst flow PDR  : {:.3}", results.worst_flow_pdr());
    if let Some(lat) = results.median_latency_ms() {
        println!("median latency  : {lat:.0} ms");
    }
    println!("power/packet    : {:.4} mW", results.power_per_received_packet_mw());
    println!("parent changes  : {}", results.parent_change_times.len());
    println!("drops           : {} retry, {} queue", results.retry_drops, results.queue_drops);
    for flow in &results.flows {
        println!(
            "  {} src {}: {}/{} (PDR {:.2})",
            flow.flow,
            flow.source,
            flow.delivered,
            flow.generated,
            flow.pdr()
        );
    }
    Ok(())
}

fn cmd_topology(args: &Args) -> Result<(), String> {
    let topology = topology_from(args.options.get("topology").map_or("testbed-a", String::as_str))?;
    println!("name          : {}", topology.name());
    println!("nodes         : {}", topology.len());
    println!(
        "access points : {:?}",
        topology.access_points().iter().map(|a| a.0).collect::<Vec<_>>()
    );
    // Link census from the mean-RSS oracle.
    let rf = RfConfig::indoor();
    let mut usable = 0u32;
    let mut total = 0u32;
    for a in topology.node_ids() {
        for b in topology.node_ids() {
            if a < b {
                total += 1;
                let rss = rf.mean_rss(topology.distance(a, b));
                if rss.dbm() >= digs_sim::rf::RSS_MIN.dbm() {
                    usable += 1;
                }
            }
        }
    }
    println!("usable links  : {usable} of {total} pairs (mean-RSS ≥ RSSmin)");
    let mean_degree = 2.0 * f64::from(usable) / topology.len() as f64;
    println!("mean degree   : {mean_degree:.1}");
    Ok(())
}

fn cmd_graph(args: &Args) -> Result<(), String> {
    let secs: u64 = get(args, "secs", 150)?;
    let mut network = build_network(args, BuildExtras::default())?;
    network.run_secs(secs);
    let graph = network.routing_graph();
    println!(
        "after {secs} s: joined {:.0}%, backup coverage {:.0}%, DAG: {}, reachable: {}",
        graph.fraction_joined() * 100.0,
        graph.fraction_with_backup() * 100.0,
        graph.is_dag(),
        graph.all_reachable()
    );
    for node in graph.nodes() {
        let e = graph.entry(node).expect("recorded");
        println!(
            "  {node}: {} best={} second={}",
            e.rank,
            e.best.map_or("-".to_string(), |p| p.to_string()),
            e.second.map_or("-".to_string(), |p| p.to_string()),
        );
    }
    Ok(())
}

fn cmd_manager(args: &Args) -> Result<(), String> {
    use digs_sim::link::LinkModel;
    use digs_whart::{LinkDb, NetworkManager, UpdateCostConfig};
    let topology = topology_from(args.options.get("topology").map_or("testbed-a", String::as_str))?;
    let flows: usize = get(args, "flows", 8)?;
    let model = LinkModel::new(&topology, RfConfig::indoor(), 1);
    let db = LinkDb::from_link_model(&model);
    let mut manager =
        NetworkManager::new(db, topology.access_points(), UpdateCostConfig::default());
    let mut sources = topology.field_devices();
    sources.reverse();
    sources.truncate(flows);
    let report =
        manager.full_update(&sources, 1000).map_err(|e| format!("scheduling failed: {e}"))?;
    println!("centralized WirelessHART update cycle for {}:", topology.name());
    println!("  {report}");
    let schedule = manager.schedule().expect("just computed");
    println!("  schedule cells: {}", schedule.cells().len());
    println!("  conflict-free : {}", schedule.is_conflict_free());
    Ok(())
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let sub = args
        .subcommand
        .as_deref()
        .ok_or_else(|| format!("trace needs a subcommand (journeys|churn|dump)\n{}", usage()))?;
    let secs: u64 = get(args, "secs", 120)?;
    let cap: usize = get(args, "trace-cap", 65_536)?;
    let mut network =
        build_network(args, BuildExtras { trace_cap: Some(cap), ..BuildExtras::default() })?;
    network.run_secs(secs);
    let events = network.trace().events();
    match sub {
        "journeys" => {
            let journeys = digs_trace::journeys(&events);
            let b = digs_trace::latency_breakdown(&journeys);
            println!("events          : {}", events.len());
            println!(
                "journeys        : {} ({} complete, {} via backup parent)",
                b.journeys, b.complete, b.used_backup
            );
            println!("mean latency    : {:.1} slots", b.mean_latency_slots);
            println!("mean hops       : {:.2}", b.mean_hops);
            println!("mean queueing   : {:.1} slots/journey", b.mean_queue_slots);
            println!("mean retx wait  : {:.1} slots/journey", b.mean_retx_slots);
            println!("mean attempts   : {:.2}", b.mean_attempts);
            let mut complete: Vec<_> = journeys.iter().filter(|j| j.is_complete()).collect();
            complete.sort_by_key(|j| std::cmp::Reverse(j.latency_slots.unwrap_or(0)));
            println!("slowest journeys:");
            for j in complete.iter().take(10) {
                println!(
                    "  {}: {} slots over {} hops, {} attempts{}",
                    j.packet,
                    j.latency_slots.unwrap_or(0),
                    j.hops.len(),
                    j.total_attempts(),
                    if j.used_backup() { ", via backup" } else { "" }
                );
            }
            let min_complete: usize = get(args, "min-complete", 0)?;
            if b.complete < min_complete {
                return Err(format!(
                    "only {} complete journeys reconstructed (need {min_complete})",
                    b.complete
                ));
            }
            Ok(())
        }
        "churn" => {
            let timeline = digs_trace::churn_timeline(&events);
            println!("churn/repair timeline ({} events):", timeline.len());
            for e in &timeline {
                println!("  {e}");
            }
            let episodes = digs_trace::repair_episodes(&events);
            println!("repair episodes: {}", episodes.len());
            for ep in &episodes {
                let first =
                    ep.first_switch_after.map_or_else(|| "-".to_string(), |d| format!("{d} slots"));
                println!(
                    "  {} → {} parent switches, first after {first}",
                    ep.fault,
                    ep.switches.len()
                );
            }
            Ok(())
        }
        "dump" => {
            let text = digs_trace::to_jsonl(&events);
            // Round-trip before emitting: a dump the tooling cannot parse
            // back is worse than no dump.
            let parsed =
                digs_trace::from_jsonl(&text).map_err(|e| format!("round-trip failed: {e}"))?;
            if parsed.len() != events.len() {
                return Err(format!(
                    "round-trip lost events: {} in, {} back",
                    events.len(),
                    parsed.len()
                ));
            }
            print!("{text}");
            eprintln!("{} events", events.len());
            Ok(())
        }
        other => Err(format!("unknown trace subcommand `{other}` (journeys|churn|dump)")),
    }
}

fn telemetry_extras(args: &Args) -> Result<(BuildExtras, u64, usize), String> {
    let epoch_slots: u64 = get(args, "epoch-slots", 1000)?;
    let cap: usize = get(args, "cap", 4096)?;
    if epoch_slots == 0 || cap == 0 {
        return Err("telemetry needs --epoch-slots > 0 and --cap > 0".into());
    }
    let jam = match args.options.get("jam") {
        None => None,
        Some(spec) => {
            let (start, end) = spec
                .split_once(':')
                .ok_or_else(|| format!("--jam takes START:END seconds, got `{spec}`"))?;
            Some((
                start.parse().map_err(|e| format!("bad --jam start: {e}"))?,
                end.parse().map_err(|e| format!("bad --jam end: {e}"))?,
            ))
        }
    };
    Ok((
        BuildExtras { trace_cap: None, telemetry: Some((epoch_slots, cap)), jam },
        epoch_slots,
        cap,
    ))
}

fn cmd_telemetry(args: &Args) -> Result<(), String> {
    let sub = args
        .subcommand
        .as_deref()
        .ok_or_else(|| format!("telemetry needs a subcommand (export|report|top)\n{}", usage()))?;
    let secs: u64 = get(args, "secs", 300)?;
    let (extras, epoch_slots, _cap) = telemetry_extras(args)?;
    let mut network = build_network(args, extras)?;
    match sub {
        "export" => {
            network.run_secs(secs);
            let sampler = network.telemetry().expect("telemetry enabled above");
            match args.options.get("format").map_or("jsonl", String::as_str) {
                "jsonl" => print!("{}", digs::telemetry::to_jsonl(sampler)),
                "csv" => print!("{}", digs::telemetry::to_csv(sampler)),
                other => return Err(format!("unknown --format `{other}` (jsonl|csv)")),
            }
            eprintln!("{} epochs, {} alerts", sampler.summary().epochs, sampler.summary().alerts);
            Ok(())
        }
        "report" => {
            network.run_secs(secs);
            let sampler = network.telemetry().expect("telemetry enabled above");
            print!("{}", digs::telemetry::report(sampler));
            Ok(())
        }
        "top" => {
            // Live dashboard: advance one epoch at a time and redraw.
            let total_slots = secs * 100;
            let mut done = 0u64;
            while done < total_slots {
                let step = epoch_slots.min(total_slots - done);
                network.run(step);
                done += step;
                let sampler = network.telemetry().expect("telemetry enabled above");
                // ANSI home+clear keeps the table in place on a terminal;
                // on a pipe it degrades to a frame-per-epoch log.
                print!("\x1b[H\x1b[2J{}", digs::telemetry::report(sampler));
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
            Ok(())
        }
        other => Err(format!("unknown telemetry subcommand `{other}` (export|report|top)")),
    }
}

fn cmd_gate(args: &Args) -> Result<(), String> {
    let mut opts = digs_conformance::GateOptions::new();
    opts.matrix = digs_conformance::MatrixKind::parse(
        args.options.get("matrix").map_or("full", String::as_str),
    )?;
    if let Some(spec) = args.options.get("seeds") {
        opts.seeds =
            digs_sim::seeds::SeedSpec::parse(spec).map_err(|e| e.to_string())?.seeds().to_vec();
    }
    if let Some(dir) = args.options.get("goldens") {
        opts.goldens_dir = dir.into();
    }
    if let Some(secs) = args.options.get("secs") {
        opts.secs = Some(secs.parse().map_err(|e| format!("bad --secs: {e}"))?);
    }
    if let Some(jobs) = args.options.get("jobs") {
        opts.jobs = Some(jobs.parse().map_err(|e| format!("bad --jobs: {e}"))?);
    }
    opts.bless = args.options.get("bless").is_some_and(|v| v == "true");
    opts.json = args.json;
    opts.inject_loss = args.options.get("inject-loss").cloned();
    opts.summary = args.options.get("summary").map(Into::into);
    let outcome = digs_conformance::run_gate(&opts)?;
    if outcome.passed {
        Ok(())
    } else {
        Err("conformance gate breached".into())
    }
}

fn fleet_jobs(args: &Args) -> Result<Option<usize>, String> {
    if let Some(jobs) = args.options.get("jobs") {
        return jobs.parse().map(Some).map_err(|e| format!("bad --jobs: {e}"));
    }
    match std::env::var("DIGS_FLEET_JOBS") {
        Ok(v) => v.parse().map(Some).map_err(|e| format!("bad DIGS_FLEET_JOBS `{v}`: {e}")),
        Err(_) => Ok(None),
    }
}

fn cmd_fleet_run(args: &Args) -> Result<(), String> {
    use digs_fleet::{FleetSpec, ShardedSpec, SloPolicy, Template};
    let networks: u32 = get(args, "networks", 32)?;
    let seed_base: u64 = get(args, "seed-base", 1)?;
    let secs: u64 = get(args, "secs", 600)?;
    let sharded_devices: usize = get(args, "sharded-devices", 0)?;

    let mut spec = FleetSpec::new().secs(secs);
    match args.options.get("template").map_or("mixed", String::as_str) {
        "mixed" => {
            // Alternating split: oil-field gets the odd network out.
            let oil = networks.div_ceil(2);
            if oil > 0 {
                spec = spec.group(Template::OilField, oil, seed_base);
            }
            if networks > oil {
                spec = spec.group(Template::FactoryFloor, networks - oil, seed_base);
            }
        }
        name => {
            let template: Template = name.parse()?;
            spec = spec.group(template, networks, seed_base);
        }
    }
    if sharded_devices > 0 {
        let sharded_seed: u64 = get(args, "sharded-seed", seed_base)?;
        let mut sharded =
            ShardedSpec::sized(format!("campus-{sharded_devices}"), sharded_devices, sharded_seed);
        sharded.shard_devices = get(args, "shard-size", sharded.shard_devices)?;
        if sharded.shard_devices == 0 {
            return Err("--shard-size must be > 0".into());
        }
        spec = spec.sharded(sharded);
    }
    if spec.networks() == 0 {
        return Err("empty fleet: need --networks > 0 or --sharded-devices > 0".into());
    }

    let outcome = digs_fleet::run_fleet(&spec, fleet_jobs(args)?);
    let mut summaries = outcome.summaries;
    if let Some(pattern) = args.options.get("inject-loss") {
        let hit = digs_fleet::degrade_matching(&mut summaries, pattern);
        eprintln!("fleet: injected loss into {hit} network(s) matching `{pattern}`");
    }
    let report = digs_fleet::aggregate(&summaries, spec.secs);
    let policy = SloPolicy::new();

    let rate = outcome.node_secs as f64 / outcome.serial_equivalent.as_secs_f64().max(1e-9);
    eprintln!(
        "fleet: wall {:.1} s, serial-equivalent {:.1} s on {} worker(s), {:.0} node-sec/core-sec",
        outcome.wall.as_secs_f64(),
        outcome.serial_equivalent.as_secs_f64(),
        outcome.jobs,
        rate
    );
    if args.json {
        println!("{}", report.to_json(&policy).to_pretty());
    } else {
        print!("{}", report.render(&policy));
    }
    if let Some(path) = args.options.get("report") {
        let text = report.to_json(&policy).to_pretty() + "\n";
        std::fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("fleet: canonical report written to {path}");
    }
    let breaches = report.breaches(&policy);
    if breaches.is_empty() {
        Ok(())
    } else {
        Err(format!("fleet SLO gate breached ({} breach(es))", breaches.len()))
    }
}

fn cmd_fleet_report(args: &Args) -> Result<(), String> {
    let path = args.options.get("input").ok_or("fleet report needs --input FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let v = digs_conformance::json::parse(&text).map_err(|e| format!("parsing {path}: {e}"))?;
    if args.json {
        println!("{}", v.to_pretty());
        return Ok(());
    }
    let num = |key: &str| v.field(key).and_then(|f| f.as_f64());
    let show = |x: Option<f64>| x.map_or("-".to_string(), |x| format!("{x}"));
    println!("fleet SLO report ({path})");
    println!(
        "  networks        : {} ({} nodes, {} s simulated each)",
        show(num("networks")),
        show(num("nodes")),
        show(num("secs"))
    );
    println!(
        "  fleet PDR       : {} ({} / {} packets; mean network {})",
        show(num("fleet_pdr")),
        show(num("delivered")),
        show(num("generated")),
        show(num("mean_network_pdr"))
    );
    println!(
        "  e2e latency     : p50 {} ms / p99 {} ms ({} samples)",
        show(num("latency_p50_ms").map(|x| x.round())),
        show(num("latency_p99_ms").map(|x| x.round())),
        show(num("latency_samples"))
    );
    println!(
        "  health alerts   : {} network(s), {} alert(s)",
        show(num("alert_networks")),
        show(num("total_alerts"))
    );
    println!(
        "  audit violations: {} network(s), {} violation(s)",
        show(num("violation_networks")),
        show(num("total_violations"))
    );
    println!("  worst networks  :");
    for w in v.field("worst_networks").and_then(|f| f.as_arr()).unwrap_or(&[]) {
        println!(
            "    {}  {}",
            w.field("pdr").and_then(|f| f.as_f64()).map_or("-".into(), |p| format!("{p:.4}")),
            w.field("label").and_then(|f| f.as_str()).unwrap_or("?")
        );
    }
    for (key, header, field) in [
        ("alerting_networks", "  most alerting   :", "alerts"),
        ("violating_networks", "  violating       :", "violations"),
    ] {
        let rows = v.field(key).and_then(|f| f.as_arr()).unwrap_or(&[]);
        if !rows.is_empty() {
            println!("{header}");
            for w in rows {
                println!(
                    "    {:>6}  {}",
                    w.field(field).and_then(|f| f.as_f64()).map_or("-".into(), |n| format!("{n}")),
                    w.field("label").and_then(|f| f.as_str()).unwrap_or("?")
                );
            }
        }
    }
    let slo = v.field("slo");
    let passed = slo
        .and_then(|s| s.field("passed"))
        .is_some_and(|p| matches!(p, digs_conformance::json::Value::Bool(true)));
    println!("  SLO             : {}", if passed { "PASSED" } else { "FAILED" });
    if let Some(breaches) = slo.and_then(|s| s.field("breaches")).and_then(|b| b.as_arr()) {
        for b in breaches {
            println!("    breach: {}", b.as_str().unwrap_or("?"));
        }
    }
    if passed {
        Ok(())
    } else {
        Err("saved report records an SLO breach".into())
    }
}

fn cmd_fleet(args: &Args) -> Result<(), String> {
    match args.subcommand.as_deref() {
        Some("run") => cmd_fleet_run(args),
        Some("report") => cmd_fleet_report(args),
        Some(other) => Err(format!("unknown fleet subcommand `{other}` (run|report)")),
        None => Err(format!("fleet needs a subcommand (run|report)\n{}", usage())),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "run" => cmd_run(&args),
        "topology" => cmd_topology(&args),
        "graph" => cmd_graph(&args),
        "manager" => cmd_manager(&args),
        "trace" => cmd_trace(&args),
        "telemetry" => cmd_telemetry(&args),
        "gate" => cmd_gate(&args),
        "fleet" => cmd_fleet(&args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
