//! The conformance matrix: every gated scenario and how to run one seed
//! of it.
//!
//! A [`ScenarioSpec`] owns a pre-built topology — the expensive immutable
//! setup is hoisted out of the per-seed loop, and each run receives a
//! cheap clone — plus the scenario's duration and metric context (where
//! its disturbance window and repair event sit). [`full_matrix`] covers
//! the paper's evaluation (Figs. 4/5, 9–13), the three-way comparison,
//! and the chaos soak; [`small_matrix`] is the CI subset (Testbed A
//! scenarios only).

use crate::metrics::{MetricContext, RunMetrics};
use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs::scenarios;
use digs_sim::fault::{ChaosConfig, ChaosPlan, FaultPlan, Outage};
use digs_sim::time::{Asn, SLOTS_PER_SECOND};
use digs_sim::topology::Topology;

/// Quiet period (seconds) that ends a repair burst when deriving the
/// repair-time metric.
pub const REPAIR_SETTLE_SECS: u64 = 10;

/// Auditor sampling period for the chaos scenarios: every 10 s.
const AUDIT_EVERY_SLOTS: u64 = 10 * SLOTS_PER_SECOND;

/// Chaos scenario phases (mirrors the `chaos_soak` binary).
const CHAOS_WARMUP_SECS: u64 = 120;
const CHAOS_TAIL_SECS: u64 = 120;

/// When the three-way comparison's shared relay fails / recovers.
const THREEWAY_FAIL_START_SECS: u64 = 120;
const THREEWAY_FAIL_END_SECS: u64 = 240;

/// Paper Fig. 5 medians for Orchestra's per-flow PDR during repair with
/// 1–4 jammers. The golden encodes `paper − 0.05` as an absolute floor
/// on the windowed-PDR median: the reproduction may beat the testbed,
/// but a regression that collapses delivery during repair to below the
/// paper's own numbers is a hard failure.
pub const FIG5_PAPER_MEDIANS: [f64; 4] = [0.90, 0.87, 0.845, 0.825];

/// Slack under the paper median allowed before the floor trips.
pub const FIG5_FLOOR_SLACK: f64 = 0.05;

/// When the adaptive jammer's learning window ends and selective jamming
/// begins, seconds into the run ([`digs_sim::interference::Jammer::adaptive`]
/// sniffs for 3 000 slots = 30 s after switching on). The adversarial
/// scenarios start their PDR window here so the metric measures the
/// schedule under active attack, not diluted by the silent learning phase.
pub const ADAPTIVE_ACTIVE_SECS: u64 = scenarios::JAM_START_SECS + 30;

/// Adversarial-gate attack bound: a working schedule-learning attack must
/// hold the victim windowed-PDR median at or below this ceiling. The clean
/// (and defended) baseline sits near 0.95+, so the ceiling asserts the
/// attack cuts at least ~30 % of delivery during the jamming window.
pub const ADAPTIVE_ATTACK_PDR_CEILING: f64 = 0.65;

/// Adversarial-gate defense bound: with schedule randomization on, the
/// windowed-PDR median must stay at or above this floor — within normal
/// interference tolerance of the clean baseline — both with the jammers
/// present (duel) and without them (overhead check).
pub const ADAPTIVE_DEFENSE_PDR_FLOOR: f64 = 0.85;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// Fig. 9: Testbed A, 8 flows, 3 WiFi jammers.
    TestbedAInterference,
    /// Fig. 10: Testbed B, 6 flows, 3 jammers over two floors.
    TestbedBInterference,
    /// Figs. 4+5: Testbed A with `jammers` jammers (Orchestra sweep).
    JammerSweep { jammers: usize },
    /// Fig. 11: Testbed A, four central relays fail in turn.
    NodeFailure,
    /// Fig. 12: 150 nodes + 2 APs, 20 flows, five disturbers.
    LargeScale,
    /// Fig. 13: cold-start join times, no flows.
    Initialization,
    /// Three-way comparison, undisturbed.
    ThreewayClean,
    /// Three-way comparison with a shared relay outage 120–240 s.
    ThreewayFail,
    /// Randomized chaos soak with the runtime invariant auditor on.
    Chaos,
    /// Adversarial attack: adaptive schedule-learning jammers parked at
    /// the access points, no defense.
    AdaptiveJam,
    /// Defense-overhead leg: schedule randomization on, no jammers,
    /// runtime auditor on (the permutation must not break Eq. 4).
    Randomized,
    /// Attack-vs-defense duel: adaptive jammers against a randomized
    /// schedule, runtime auditor on.
    AdaptiveDuel,
}

impl Kind {
    /// Shortest run that still fits the scenario's warm-up and events.
    fn min_secs(self) -> u64 {
        match self {
            Kind::Initialization => 60,
            Kind::TestbedAInterference
            | Kind::TestbedBInterference
            | Kind::JammerSweep { .. }
            | Kind::NodeFailure
            | Kind::LargeScale => scenarios::JAM_START_SECS + 60,
            Kind::ThreewayClean => 120,
            Kind::ThreewayFail => THREEWAY_FAIL_END_SECS + 60,
            Kind::Chaos => CHAOS_WARMUP_SECS + CHAOS_TAIL_SECS + 60,
            // Adversarial legs need the learning window plus a solid
            // stretch of active jamming inside the PDR window.
            Kind::AdaptiveJam | Kind::AdaptiveDuel => ADAPTIVE_ACTIVE_SECS + 120,
            Kind::Randomized => ADAPTIVE_ACTIVE_SECS + 120,
        }
    }
}

/// One scenario of the conformance matrix.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Matrix key (stable across releases — golden files index on it).
    pub name: String,
    /// Protocol under test.
    pub protocol: Protocol,
    /// Simulated seconds per run.
    pub secs: u64,
    /// Absolute floor for the `windowed_pdr_median` golden check, when
    /// the paper states one (Fig. 5) or the adversarial gate requires the
    /// defense to hold delivery up.
    pub windowed_pdr_floor: Option<f64>,
    /// Absolute ceiling for the `windowed_pdr_median` golden check: the
    /// adversarial attack legs must keep the victim PDR at or below it,
    /// or the attack has regressed into ineffectiveness.
    pub windowed_pdr_ceiling: Option<f64>,
    kind: Kind,
    topology: Topology,
}

impl ScenarioSpec {
    fn new(name: &str, protocol: Protocol, secs: u64, kind: Kind, topology: &Topology) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            protocol,
            secs: secs.max(kind.min_secs()),
            windowed_pdr_floor: None,
            windowed_pdr_ceiling: None,
            kind,
            topology: topology.clone(),
        }
    }

    /// Runs one seed of the scenario and reduces it to its canonical
    /// record. Deterministic: same spec + seed → same record.
    pub fn run(&self, seed: u64) -> RunMetrics {
        let topology = self.topology.clone();
        let secs = self.secs;
        let jam_ctx = MetricContext {
            repair_event_secs: Some(scenarios::JAM_START_SECS),
            repair_settle_secs: REPAIR_SETTLE_SECS,
            window_start_slot: Some(scenarios::JAM_START_SECS * SLOTS_PER_SECOND),
        };
        // Adversarial legs measure PDR only while the sniffer actively
        // jams (its learning phase is silent).
        let adaptive_ctx = MetricContext {
            repair_event_secs: Some(scenarios::JAM_START_SECS),
            repair_settle_secs: REPAIR_SETTLE_SECS,
            window_start_slot: Some(ADAPTIVE_ACTIVE_SECS * SLOTS_PER_SECOND),
        };
        let (mut config, ctx) = match self.kind {
            Kind::TestbedAInterference => {
                (scenarios::testbed_a_interference_on(topology, self.protocol, seed), jam_ctx)
            }
            Kind::TestbedBInterference => {
                (scenarios::testbed_b_interference_on(topology, self.protocol, seed), jam_ctx)
            }
            Kind::JammerSweep { jammers } => (
                scenarios::testbed_a_jammer_sweep_on(topology, self.protocol, jammers, seed),
                jam_ctx,
            ),
            Kind::NodeFailure => (
                scenarios::testbed_a_node_failure_on(topology, self.protocol, seed),
                MetricContext {
                    repair_event_secs: Some(scenarios::FAILURE_START_SECS),
                    repair_settle_secs: REPAIR_SETTLE_SECS,
                    window_start_slot: Some(scenarios::FAILURE_START_SECS * SLOTS_PER_SECOND),
                },
            ),
            Kind::LargeScale => {
                (scenarios::large_scale_on(topology, self.protocol, seed), MetricContext::default())
            }
            Kind::Initialization => (
                scenarios::initialization_on(topology, self.protocol, seed),
                MetricContext::default(),
            ),
            Kind::ThreewayClean => {
                (threeway_config(topology, self.protocol, seed), MetricContext::default())
            }
            Kind::ThreewayFail => (
                threeway_config(topology, self.protocol, seed),
                MetricContext {
                    repair_event_secs: Some(THREEWAY_FAIL_START_SECS),
                    repair_settle_secs: REPAIR_SETTLE_SECS,
                    window_start_slot: Some(THREEWAY_FAIL_START_SECS * SLOTS_PER_SECOND),
                },
            ),
            Kind::Chaos => {
                return self.run_chaos(seed);
            }
            Kind::AdaptiveJam => {
                (scenarios::testbed_a_adaptive_jam_on(topology, self.protocol, seed), adaptive_ctx)
            }
            Kind::Randomized => (
                scenarios::testbed_a_randomized_on(topology, self.protocol, seed),
                MetricContext {
                    repair_event_secs: None,
                    repair_settle_secs: 0,
                    window_start_slot: Some(ADAPTIVE_ACTIVE_SECS * SLOTS_PER_SECOND),
                },
            ),
            Kind::AdaptiveDuel => {
                (scenarios::testbed_a_adaptive_duel_on(topology, self.protocol, seed), adaptive_ctx)
            }
        };
        // The gate never traces or samples telemetry: keep runs lean and
        // immune to the DIGS_TRACE_CAP / DIGS_TELEMETRY_* environment of
        // whoever invokes it.
        config.trace_cap = Some(0);
        config.telemetry_epoch = Some(0);
        let specs = config.flows.clone();
        let results = match self.kind {
            Kind::ThreewayFail => {
                let mut network = Network::new(config.clone());
                network.run_secs(THREEWAY_FAIL_START_SECS);
                if let Some(victim) = digs::experiment::shared_relay_victim(&config) {
                    network.set_fault_plan(FaultPlan::none().with(Outage::transient(
                        victim,
                        Asn::from_secs(THREEWAY_FAIL_START_SECS),
                        Asn::from_secs(THREEWAY_FAIL_END_SECS),
                    )));
                }
                network.run_secs(secs - THREEWAY_FAIL_START_SECS);
                network.results()
            }
            // The defense legs run audited: the golden pins their
            // `audit_violations.max` to zero, proving the per-epoch
            // permutation never breaks Eq. 4 conflict-freedom.
            Kind::Randomized | Kind::AdaptiveDuel => {
                let mut network = Network::new(config);
                network.run_audited(secs * SLOTS_PER_SECOND, AUDIT_EVERY_SLOTS);
                network.results()
            }
            _ => digs::experiment::run_for(config, secs),
        };
        RunMetrics::from_results(
            &self.name,
            self.protocol.name(),
            seed,
            secs,
            &results,
            &specs,
            ctx,
        )
    }

    /// The chaos soak leg: seeded [`ChaosPlan`] faults + jammer bursts
    /// with the runtime invariant auditor sampling every 10 s. The
    /// record's `audit_violations` count is the robustness metric the
    /// golden pins to zero for DiGS.
    fn run_chaos(&self, seed: u64) -> RunMetrics {
        let secs = self.secs;
        let chaos_secs = secs - CHAOS_WARMUP_SECS - CHAOS_TAIL_SECS;
        let chaos_config = ChaosConfig::moderate(Asn::from_secs(CHAOS_WARMUP_SECS), chaos_secs);
        let plan = ChaosPlan::generate(&chaos_config, &self.topology, seed);
        let mut flows = scenarios::far_flow_set(&self.topology, 6, 500, seed);
        for f in &mut flows {
            f.phase += 60 * SLOTS_PER_SECOND;
        }
        let mut builder = NetworkConfig::builder(self.topology.clone())
            .protocol(self.protocol)
            .seed(seed)
            .flows(flows)
            .faults(plan.faults().clone())
            .trace_cap(0)
            .telemetry_epoch(0);
        for jammer in plan.jammers() {
            builder = builder.jammer(jammer.clone());
        }
        let config = builder.build();
        let specs = config.flows.clone();
        let mut network = Network::new(config);
        network.run_audited(secs * SLOTS_PER_SECOND, AUDIT_EVERY_SLOTS);
        let results = network.results();
        RunMetrics::from_results(
            &self.name,
            self.protocol.name(),
            seed,
            secs,
            &results,
            &specs,
            MetricContext::default(),
        )
    }
}

/// The three-way comparison's configuration: six far-source flows on
/// Testbed A, phased past a 60 s warm-up.
fn threeway_config(topology: Topology, protocol: Protocol, seed: u64) -> NetworkConfig {
    let mut flows = scenarios::far_flow_set(&topology, 6, 500, seed);
    for f in &mut flows {
        f.phase += 60 * SLOTS_PER_SECOND;
    }
    NetworkConfig::builder(topology).protocol(protocol).seed(seed).flows(flows).build()
}

/// Which matrix tier to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixKind {
    /// CI subset: Testbed A scenarios only.
    Small,
    /// The whole evaluation.
    Full,
}

impl MatrixKind {
    /// Parses `small` / `full`.
    ///
    /// # Errors
    ///
    /// Returns a message on anything else.
    pub fn parse(s: &str) -> Result<MatrixKind, String> {
        match s {
            "small" => Ok(MatrixKind::Small),
            "full" => Ok(MatrixKind::Full),
            other => Err(format!("unknown matrix `{other}` (small|full)")),
        }
    }

    /// The tier's name (used as the golden file stem).
    pub fn name(self) -> &'static str {
        match self {
            MatrixKind::Small => "small",
            MatrixKind::Full => "full",
        }
    }

    /// Builds the tier's scenario list. `secs_override` shortens or
    /// lengthens every scenario (clamped to each scenario's minimum).
    pub fn scenarios(self, secs_override: Option<u64>) -> Vec<ScenarioSpec> {
        match self {
            MatrixKind::Small => small_matrix(secs_override),
            MatrixKind::Full => full_matrix(secs_override),
        }
    }
}

fn jammer_sweep_specs(
    testbed_a: &Topology,
    secs: u64,
    jammer_counts: &[usize],
) -> Vec<ScenarioSpec> {
    jammer_counts
        .iter()
        .map(|&jammers| {
            let mut spec = ScenarioSpec::new(
                &format!("fig04-05-jam{jammers}"),
                Protocol::Orchestra,
                secs,
                Kind::JammerSweep { jammers },
                testbed_a,
            );
            spec.windowed_pdr_floor = Some(FIG5_PAPER_MEDIANS[jammers - 1] - FIG5_FLOOR_SLACK);
            spec
        })
        .collect()
}

/// The adversarial family: attack legs per requested protocol, plus the
/// DiGS-only defense-overhead and duel legs (schedule randomization is a
/// DiGS mechanism — Orchestra has no Eq. 4 schedule to permute).
fn adversarial_specs(
    testbed_a: &Topology,
    secs: u64,
    attack_protocols: &[Protocol],
) -> Vec<ScenarioSpec> {
    let mut specs = Vec::new();
    for &protocol in attack_protocols {
        let mut attack = ScenarioSpec::new(
            &format!("adv-attack-{}", protocol.name()),
            protocol,
            secs,
            Kind::AdaptiveJam,
            testbed_a,
        );
        attack.windowed_pdr_ceiling = Some(ADAPTIVE_ATTACK_PDR_CEILING);
        specs.push(attack);
    }
    let mut defense =
        ScenarioSpec::new("adv-defense-digs", Protocol::Digs, secs, Kind::Randomized, testbed_a);
    defense.windowed_pdr_floor = Some(ADAPTIVE_DEFENSE_PDR_FLOOR);
    specs.push(defense);
    let mut duel =
        ScenarioSpec::new("adv-duel-digs", Protocol::Digs, secs, Kind::AdaptiveDuel, testbed_a);
    duel.windowed_pdr_floor = Some(ADAPTIVE_DEFENSE_PDR_FLOOR);
    specs.push(duel);
    specs
}

/// The full conformance matrix: paper figures, the three-way comparison,
/// and the chaos soak, for all protocols each figure compares.
pub fn full_matrix(secs_override: Option<u64>) -> Vec<ScenarioSpec> {
    // Hoisted shared setup: one topology build per testbed, cloned into
    // every spec (and from there into every seeded run).
    let testbed_a = Topology::testbed_a();
    let testbed_b = Topology::testbed_b();
    let cooja = Topology::cooja_150(7);
    let s = |default: u64| secs_override.unwrap_or(default);

    let mut specs = Vec::new();
    for protocol in [Protocol::Digs, Protocol::Orchestra] {
        let p = protocol.name();
        specs.push(ScenarioSpec::new(
            &format!("fig09-{p}"),
            protocol,
            s(420),
            Kind::TestbedAInterference,
            &testbed_a,
        ));
        specs.push(ScenarioSpec::new(
            &format!("fig10-{p}"),
            protocol,
            s(420),
            Kind::TestbedBInterference,
            &testbed_b,
        ));
        specs.push(ScenarioSpec::new(
            &format!("fig11-{p}"),
            protocol,
            s(420),
            Kind::NodeFailure,
            &testbed_a,
        ));
        specs.push(ScenarioSpec::new(
            &format!("fig12-{p}"),
            protocol,
            s(420),
            Kind::LargeScale,
            &cooja,
        ));
        specs.push(ScenarioSpec::new(
            &format!("fig13-{p}"),
            protocol,
            s(120),
            Kind::Initialization,
            &testbed_a,
        ));
    }
    specs.extend(jammer_sweep_specs(&testbed_a, s(420), &[1, 2, 3, 4]));
    for protocol in [Protocol::Digs, Protocol::Orchestra, Protocol::WirelessHart] {
        let p = protocol.name();
        specs.push(ScenarioSpec::new(
            &format!("threeway-clean-{p}"),
            protocol,
            s(360),
            Kind::ThreewayClean,
            &testbed_a,
        ));
        specs.push(ScenarioSpec::new(
            &format!("threeway-fail-{p}"),
            protocol,
            s(360),
            Kind::ThreewayFail,
            &testbed_a,
        ));
        specs.push(ScenarioSpec::new(
            &format!("chaos-{p}"),
            protocol,
            s(600),
            Kind::Chaos,
            &testbed_a,
        ));
    }
    specs.extend(adversarial_specs(&testbed_a, s(420), &[Protocol::Digs, Protocol::Orchestra]));
    specs
}

/// The CI subset: every Testbed A scenario family once, cheap enough for
/// a per-PR wall-clock budget.
pub fn small_matrix(secs_override: Option<u64>) -> Vec<ScenarioSpec> {
    let testbed_a = Topology::testbed_a();
    let s = |default: u64| secs_override.unwrap_or(default);
    let mut specs = Vec::new();
    for protocol in [Protocol::Digs, Protocol::Orchestra] {
        let p = protocol.name();
        specs.push(ScenarioSpec::new(
            &format!("fig09-{p}"),
            protocol,
            s(420),
            Kind::TestbedAInterference,
            &testbed_a,
        ));
        specs.push(ScenarioSpec::new(
            &format!("fig11-{p}"),
            protocol,
            s(420),
            Kind::NodeFailure,
            &testbed_a,
        ));
    }
    specs.push(ScenarioSpec::new(
        "fig13-digs",
        Protocol::Digs,
        s(120),
        Kind::Initialization,
        &testbed_a,
    ));
    specs.extend(jammer_sweep_specs(&testbed_a, s(420), &[1, 4]));
    specs.push(ScenarioSpec::new(
        "threeway-clean-digs",
        Protocol::Digs,
        s(360),
        Kind::ThreewayClean,
        &testbed_a,
    ));
    specs.push(ScenarioSpec::new(
        "threeway-fail-digs",
        Protocol::Digs,
        s(360),
        Kind::ThreewayFail,
        &testbed_a,
    ));
    specs.push(ScenarioSpec::new("chaos-digs", Protocol::Digs, s(600), Kind::Chaos, &testbed_a));
    specs.extend(adversarial_specs(&testbed_a, s(420), &[Protocol::Digs]));
    specs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_names_are_unique() {
        for kind in [MatrixKind::Small, MatrixKind::Full] {
            let specs = kind.scenarios(None);
            let mut names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(names.len(), before, "{} matrix has duplicate names", kind.name());
        }
    }

    #[test]
    fn small_is_a_subset_of_full() {
        let full = full_matrix(None);
        for small in small_matrix(None) {
            assert!(
                full.iter().any(|f| f.name == small.name),
                "{} missing from the full matrix",
                small.name
            );
        }
    }

    #[test]
    fn secs_override_respects_scenario_minimums() {
        for spec in full_matrix(Some(10)) {
            assert!(spec.secs >= spec.kind.min_secs(), "{} shrunk below its minimum", spec.name);
        }
    }

    #[test]
    fn jammer_sweep_carries_paper_floor() {
        let specs = full_matrix(None);
        let jam1 = specs.iter().find(|s| s.name == "fig04-05-jam1").expect("present");
        assert_eq!(jam1.windowed_pdr_floor, Some(FIG5_PAPER_MEDIANS[0] - FIG5_FLOOR_SLACK));
    }

    #[test]
    fn adversarial_specs_carry_their_bounds() {
        for kind in [MatrixKind::Small, MatrixKind::Full] {
            let specs = kind.scenarios(None);
            let attack = specs.iter().find(|s| s.name == "adv-attack-digs").expect("present");
            assert_eq!(attack.windowed_pdr_ceiling, Some(ADAPTIVE_ATTACK_PDR_CEILING));
            assert_eq!(attack.windowed_pdr_floor, None);
            for name in ["adv-defense-digs", "adv-duel-digs"] {
                let spec = specs.iter().find(|s| s.name == name).expect("present");
                assert_eq!(spec.windowed_pdr_floor, Some(ADAPTIVE_DEFENSE_PDR_FLOOR));
                assert_eq!(spec.windowed_pdr_ceiling, None);
            }
        }
        let full = full_matrix(None);
        assert!(full.iter().any(|s| s.name == "adv-attack-orchestra"));
    }

    #[test]
    fn one_cheap_scenario_runs_deterministically() {
        let testbed = Topology::testbed_a_half();
        let spec = ScenarioSpec::new("t", Protocol::Digs, 60, Kind::Initialization, &testbed);
        let a = spec.run(1);
        let b = spec.run(1);
        assert_eq!(a.to_line(), b.to_line());
        assert_eq!(a.scenario, "t");
        assert!(a.fraction_joined > 0.0);
    }
}
