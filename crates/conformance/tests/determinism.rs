//! Double-run determinism: the same seed and configuration must produce
//! byte-identical canonical metrics and byte-identical trace JSONL for
//! every protocol stack. This is the property the golden-run gate leans
//! on — without it, tolerance bands would absorb nondeterminism instead
//! of regressions.

use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs::telemetry;
use digs_conformance::{MetricContext, RunMetrics};
use digs_sim::interference::Jammer;
use digs_sim::position::Position;
use digs_sim::time::Asn;
use digs_sim::topology::Topology;

/// One full run: canonical metrics line + trace JSONL, tracing pinned on
/// via the config (immune to the caller's `DIGS_TRACE_CAP`).
fn run_once(protocol: Protocol, seed: u64, secs: u64) -> (String, String) {
    let config = NetworkConfig::builder(Topology::testbed_a_half())
        .protocol(protocol)
        .seed(seed)
        .random_flows(2, 500, seed)
        .trace_cap(4096)
        .build();
    let specs = config.flows.clone();
    let mut net = Network::new(config);
    net.run_secs(secs);
    let results = net.results();
    let record = RunMetrics::from_results(
        "determinism",
        protocol.name(),
        seed,
        secs,
        &results,
        &specs,
        MetricContext::default(),
    );
    let trace = digs_trace::to_jsonl(&net.trace().events());
    (record.to_line(), trace)
}

#[test]
fn identical_runs_are_byte_identical_for_all_three_stacks() {
    for protocol in [Protocol::Digs, Protocol::Orchestra, Protocol::WirelessHart] {
        let (metrics_a, trace_a) = run_once(protocol, 7, 90);
        let (metrics_b, trace_b) = run_once(protocol, 7, 90);
        assert!(
            !trace_a.is_empty(),
            "{}: trace must record events for the comparison to mean anything",
            protocol.name()
        );
        assert_eq!(
            metrics_a,
            metrics_b,
            "{}: canonical RunMetrics JSON diverged between identical runs",
            protocol.name()
        );
        assert_eq!(
            trace_a,
            trace_b,
            "{}: trace JSONL diverged between identical runs",
            protocol.name()
        );
        // And the canonical line round-trips through the parser.
        let parsed = RunMetrics::from_line(&metrics_a).expect("canonical line parses");
        assert_eq!(parsed.to_line(), metrics_a);
    }
}

/// The attack-vs-defense duel with every observer on: adaptive jammers
/// next to each access point, schedule randomization enabled, trace and
/// telemetry both recording. Returns (trace JSONL, telemetry JSONL).
fn duel_once(seed: u64, secs: u64) -> (String, String) {
    let topology = Topology::testbed_a_half();
    let ap_positions: Vec<_> =
        topology.access_points().iter().map(|ap| topology.position(*ap)).collect();
    let app_len = digs_scheduling::SlotframeLengths::paper().app;
    let mut builder = NetworkConfig::builder(topology)
        .protocol(Protocol::Digs)
        .seed(seed)
        .random_flows(2, 500, seed)
        .trace_cap(8192)
        .telemetry_epoch(1000)
        .telemetry_cap(4096)
        .randomize(0x5afe_c0de);
    for (i, pos) in ap_positions.iter().enumerate() {
        builder = builder.jammer(Jammer::adaptive(
            Position::new(pos.x + 2.0, pos.y + 2.0),
            app_len,
            Asn::from_secs(30),
            0xada9 ^ ((i as u64) << 8),
        ));
    }
    let mut net = Network::new(builder.build());
    net.run_secs(secs);
    let trace = digs_trace::to_jsonl(&net.trace().events());
    let tele = telemetry::to_jsonl(net.telemetry().expect("telemetry pinned on"));
    (trace, tele)
}

#[test]
fn adversarial_duel_is_byte_identical_across_runs() {
    // The duel exercises every nondeterminism-prone path at once — the
    // sniffer's learned state machine, per-epoch permutations, and both
    // observability exports — so byte-equality here is the strongest
    // cheap determinism check the adversarial family gets.
    let (trace_a, tele_a) = duel_once(7, 150);
    let (trace_b, tele_b) = duel_once(7, 150);
    assert!(trace_a.lines().count() > 100, "duel trace must record a non-trivial event stream");
    assert!(
        tele_a.lines().count() > 5,
        "duel telemetry must sample a non-trivial number of epochs"
    );
    assert_eq!(trace_a, trace_b, "duel trace JSONL diverged between identical runs");
    assert_eq!(tele_a, tele_b, "duel telemetry JSONL diverged between identical runs");
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against the determinism test passing vacuously because the
    // seed never reaches the simulation.
    let (metrics_a, _) = run_once(Protocol::Digs, 7, 90);
    let (metrics_c, _) = run_once(Protocol::Digs, 8, 90);
    assert_ne!(metrics_a, metrics_c, "distinct seeds should not collide byte-for-byte");
}
