//! Telemetry pipeline integration: determinism of the exported series,
//! observation-only sampling, and the health monitor catching an
//! injected fault without crying wolf on a clean run.

use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs::telemetry::{self, HealthRule};
use digs_sim::interference::Jammer;
use digs_sim::position::Position;
use digs_sim::rf::Dbm;
use digs_sim::time::{Asn, SLOTS_PER_SECOND};
use digs_sim::topology::Topology;

/// One run with telemetry pinned on via the config (immune to the
/// caller's `DIGS_TELEMETRY_*` environment), returning the exported
/// JSONL series.
fn telemetry_jsonl(protocol: Protocol, seed: u64, secs: u64) -> String {
    let config = NetworkConfig::builder(Topology::testbed_a_half())
        .protocol(protocol)
        .seed(seed)
        .random_flows(2, 500, seed)
        .trace_cap(0)
        .telemetry_epoch(1000)
        .telemetry_cap(4096)
        .build();
    let mut net = Network::new(config);
    net.run_secs(secs);
    let sampler = net.telemetry().expect("telemetry pinned on");
    telemetry::to_jsonl(sampler)
}

#[test]
fn telemetry_jsonl_is_byte_identical_for_all_three_stacks() {
    for protocol in [Protocol::Digs, Protocol::Orchestra, Protocol::WirelessHart] {
        let a = telemetry_jsonl(protocol, 7, 90);
        let b = telemetry_jsonl(protocol, 7, 90);
        assert!(
            a.lines().count() > 5,
            "{}: a 90 s run must sample a non-trivial number of epochs",
            protocol.name()
        );
        assert_eq!(a, b, "{}: telemetry JSONL diverged between identical runs", protocol.name());
    }
}

#[test]
fn telemetry_sampling_is_observation_only() {
    // Same property the trace layer guarantees: switching the sampler on
    // must not perturb a single delivery, join, or parent change.
    let run = |epoch_slots: u64| {
        let mut net = Network::new(
            NetworkConfig::builder(Topology::testbed_a_half())
                .protocol(Protocol::Digs)
                .seed(11)
                .random_flows(2, 300, 5)
                .trace_cap(0)
                .telemetry_epoch(epoch_slots)
                .telemetry_cap(4096)
                .build(),
        );
        net.run_secs(60);
        let r = net.results();
        (r.total_delivered(), r.total_generated(), r.parent_change_times.len())
    };
    assert_eq!(run(0), run(500), "telemetry must be observation-only");
}

/// A jammed run (same full-band cluster `digs-cli --jam` places: four
/// WiFi channels covering all sixteen 802.15.4 channels, one elevated
/// cluster per access point) and its clean twin.
fn health_run(jam: Option<(u64, u64)>) -> Vec<telemetry::HealthAlert> {
    let topology = Topology::testbed_a_half();
    let ap_positions: Vec<_> =
        topology.access_points().iter().map(|ap| topology.position(*ap)).collect();
    let mut builder = NetworkConfig::builder(topology)
        .protocol(Protocol::Digs)
        .seed(7)
        .random_flows(2, 500, 7)
        .trace_cap(0)
        .telemetry_epoch(1000)
        .telemetry_cap(4096);
    if let Some((start, end)) = jam {
        for (i, pos) in ap_positions.iter().enumerate() {
            for (k, wifi_ch) in [1u8, 5, 9, 13].into_iter().enumerate() {
                let mut j =
                    Jammer::wifi(*pos, wifi_ch, Asn::from_secs(start)).until(Asn::from_secs(end));
                j.tx_power = Dbm(24.0);
                j.salt = 0x9a7 ^ ((i as u64) << 8) ^ k as u64;
                builder = builder.jammer(j);
            }
        }
    }
    let mut net = Network::new(builder.build());
    net.run_secs(300);
    net.telemetry().expect("telemetry pinned on").alerts().to_vec()
}

#[test]
fn health_monitor_catches_injected_jam_and_stays_quiet_on_clean_runs() {
    let clean = health_run(None);
    assert!(clean.is_empty(), "clean run must raise no alerts, got {clean:?}");

    let (jam_start, jam_end) = (150u64, 210u64);
    let alerts = health_run(Some((jam_start, jam_end)));
    let fault_slots = (jam_start * SLOTS_PER_SECOND)..(jam_end * SLOTS_PER_SECOND);
    let overlapping: Vec<_> = alerts
        .iter()
        .filter(|a| a.rule == HealthRule::PdrCollapse)
        .filter(|a| a.asn_start < fault_slots.end && a.asn_end > fault_slots.start)
        .collect();
    assert!(
        !overlapping.is_empty(),
        "expected a pdr-collapse alert overlapping the {jam_start}-{jam_end} s jam, got {alerts:?}"
    );
}

/// An adaptive schedule-learning attack run: one sniffer-jammer parked
/// next to each access point, observing from 60 s (so jamming starts
/// once the 30 s learning window fills). Traffic is deliberately dense
/// (six 3 s flows) — a sniffer needs busy cells to rank, and sparser
/// loads on the half testbed leave it cycling through relearn phases
/// without ever converging. `randomize` switches the
/// schedule-randomization defense on with the given network secret.
/// Returns the health alerts and the jammers' combined hit rate.
fn adversarial_run(randomize: Option<u64>) -> (Vec<telemetry::HealthAlert>, f64) {
    let topology = Topology::testbed_a_half();
    let ap_positions: Vec<_> =
        topology.access_points().iter().map(|ap| topology.position(*ap)).collect();
    let app_len = digs_scheduling::SlotframeLengths::paper().app;
    let mut builder = NetworkConfig::builder(topology)
        .protocol(Protocol::Digs)
        .seed(7)
        .random_flows(6, 300, 7)
        .trace_cap(0)
        .telemetry_epoch(1000)
        .telemetry_cap(4096);
    for (i, pos) in ap_positions.iter().enumerate() {
        builder = builder.jammer(Jammer::adaptive(
            Position::new(pos.x + 2.0, pos.y + 2.0),
            app_len,
            Asn::from_secs(60),
            0xada9 ^ ((i as u64) << 8),
        ));
    }
    if let Some(secret) = randomize {
        builder = builder.randomize(secret);
    }
    let mut net = Network::new(builder.build());
    net.run_secs(300);
    let stats = net.engine().stats();
    let hit_rate = if stats.adaptive_jam_opportunities == 0 {
        0.0
    } else {
        stats.adaptive_jam_hits as f64 / stats.adaptive_jam_opportunities as f64
    };
    (net.telemetry().expect("telemetry pinned on").alerts().to_vec(), hit_rate)
}

#[test]
fn adaptive_jammer_collapses_static_schedules_and_randomization_recovers() {
    // Against the static Eq. 4 schedule the sniffer's learned cell map
    // never goes stale: the attack lands, and the health monitor must
    // call it out as a PDR collapse.
    let (attack_alerts, attack_rate) = adversarial_run(None);
    assert!(
        attack_alerts.iter().any(|a| a.rule == HealthRule::PdrCollapse),
        "adaptive jam vs a static schedule must trip pdr-collapse, got {attack_alerts:?}"
    );
    assert!(
        attack_rate > 0.25,
        "a converged sniffer should land most of its jam slots on real \
         transmissions, got hit rate {attack_rate:.4}"
    );

    // With per-epoch randomization the learned map is stale by the next
    // slotframe: no collapse ever, the hit rate pins near the blind-guess
    // floor, and once formation plus first-contact churn settles the run
    // is alert-free.
    let (duel_alerts, duel_rate) = adversarial_run(Some(0x5afe_c0de));
    assert!(
        duel_alerts.iter().all(|a| a.rule != HealthRule::PdrCollapse),
        "randomized schedule must not collapse under the adaptive jammer, got {duel_alerts:?}"
    );
    assert!(
        duel_rate < 0.10,
        "randomization should pin the sniffer near its blind-guess floor, \
         got hit rate {duel_rate:.4} (attack run scored {attack_rate:.4})"
    );
    let converged = 220 * SLOTS_PER_SECOND;
    let late: Vec<_> = duel_alerts.iter().filter(|a| a.asn_start >= converged).collect();
    assert!(late.is_empty(), "defended run should be alert-free after convergence, got {late:?}");
}
