//! Telemetry pipeline integration: determinism of the exported series,
//! observation-only sampling, and the health monitor catching an
//! injected fault without crying wolf on a clean run.

use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs::telemetry::{self, HealthRule};
use digs_sim::interference::Jammer;
use digs_sim::rf::Dbm;
use digs_sim::time::{Asn, SLOTS_PER_SECOND};
use digs_sim::topology::Topology;

/// One run with telemetry pinned on via the config (immune to the
/// caller's `DIGS_TELEMETRY_*` environment), returning the exported
/// JSONL series.
fn telemetry_jsonl(protocol: Protocol, seed: u64, secs: u64) -> String {
    let config = NetworkConfig::builder(Topology::testbed_a_half())
        .protocol(protocol)
        .seed(seed)
        .random_flows(2, 500, seed)
        .trace_cap(0)
        .telemetry_epoch(1000)
        .telemetry_cap(4096)
        .build();
    let mut net = Network::new(config);
    net.run_secs(secs);
    let sampler = net.telemetry().expect("telemetry pinned on");
    telemetry::to_jsonl(sampler)
}

#[test]
fn telemetry_jsonl_is_byte_identical_for_all_three_stacks() {
    for protocol in [Protocol::Digs, Protocol::Orchestra, Protocol::WirelessHart] {
        let a = telemetry_jsonl(protocol, 7, 90);
        let b = telemetry_jsonl(protocol, 7, 90);
        assert!(
            a.lines().count() > 5,
            "{}: a 90 s run must sample a non-trivial number of epochs",
            protocol.name()
        );
        assert_eq!(a, b, "{}: telemetry JSONL diverged between identical runs", protocol.name());
    }
}

#[test]
fn telemetry_sampling_is_observation_only() {
    // Same property the trace layer guarantees: switching the sampler on
    // must not perturb a single delivery, join, or parent change.
    let run = |epoch_slots: u64| {
        let mut net = Network::new(
            NetworkConfig::builder(Topology::testbed_a_half())
                .protocol(Protocol::Digs)
                .seed(11)
                .random_flows(2, 300, 5)
                .trace_cap(0)
                .telemetry_epoch(epoch_slots)
                .telemetry_cap(4096)
                .build(),
        );
        net.run_secs(60);
        let r = net.results();
        (r.total_delivered(), r.total_generated(), r.parent_change_times.len())
    };
    assert_eq!(run(0), run(500), "telemetry must be observation-only");
}

/// A jammed run (same full-band cluster `digs-cli --jam` places: four
/// WiFi channels covering all sixteen 802.15.4 channels, one elevated
/// cluster per access point) and its clean twin.
fn health_run(jam: Option<(u64, u64)>) -> Vec<telemetry::HealthAlert> {
    let topology = Topology::testbed_a_half();
    let ap_positions: Vec<_> =
        topology.access_points().iter().map(|ap| topology.position(*ap)).collect();
    let mut builder = NetworkConfig::builder(topology)
        .protocol(Protocol::Digs)
        .seed(7)
        .random_flows(2, 500, 7)
        .trace_cap(0)
        .telemetry_epoch(1000)
        .telemetry_cap(4096);
    if let Some((start, end)) = jam {
        for (i, pos) in ap_positions.iter().enumerate() {
            for (k, wifi_ch) in [1u8, 5, 9, 13].into_iter().enumerate() {
                let mut j =
                    Jammer::wifi(*pos, wifi_ch, Asn::from_secs(start)).until(Asn::from_secs(end));
                j.tx_power = Dbm(24.0);
                j.salt = 0x9a7 ^ ((i as u64) << 8) ^ k as u64;
                builder = builder.jammer(j);
            }
        }
    }
    let mut net = Network::new(builder.build());
    net.run_secs(300);
    net.telemetry().expect("telemetry pinned on").alerts().to_vec()
}

#[test]
fn health_monitor_catches_injected_jam_and_stays_quiet_on_clean_runs() {
    let clean = health_run(None);
    assert!(clean.is_empty(), "clean run must raise no alerts, got {clean:?}");

    let (jam_start, jam_end) = (150u64, 210u64);
    let alerts = health_run(Some((jam_start, jam_end)));
    let fault_slots = (jam_start * SLOTS_PER_SECOND)..(jam_end * SLOTS_PER_SECOND);
    let overlapping: Vec<_> = alerts
        .iter()
        .filter(|a| a.rule == HealthRule::PdrCollapse)
        .filter(|a| a.asn_start < fault_slots.end && a.asn_end > fault_slots.start)
        .collect();
    assert!(
        !overlapping.is_empty(),
        "expected a pdr-collapse alert overlapping the {jam_start}-{jam_end} s jam, got {alerts:?}"
    );
}
