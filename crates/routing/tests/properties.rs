//! Property-based tests for the routing crate.

use digs_routing::etx::{EtxEstimator, ETX_CAP};
use digs_routing::messages::{JoinIn, Rank};
use digs_routing::neighbor::NeighborTable;
use digs_routing::trickle::{Trickle, TrickleConfig};
use digs_routing::{DigsRouting, RoutingConfig, RplRouting};
use digs_sim::ids::NodeId;
use digs_sim::rf::Dbm;
use digs_sim::time::Asn;
use proptest::prelude::*;

proptest! {
    /// The ETX estimate is always within [1, cap], whatever outcome
    /// sequence the link observes.
    #[test]
    fn etx_estimate_bounded(
        init_rss in -110.0f64..-40.0,
        outcomes in prop::collection::vec(any::<bool>(), 0..300)
    ) {
        let mut e = EtxEstimator::from_rss(Dbm(init_rss));
        for acked in outcomes {
            e.record(acked);
            prop_assert!(e.etx() >= 1.0 - 1e-9);
            prop_assert!(e.etx() <= ETX_CAP + 1e-9);
        }
    }

    /// A success streak can only lower (or keep) the ETX; a failure streak
    /// can only raise (or keep) it.
    #[test]
    fn etx_moves_in_the_right_direction(init_rss in -95.0f64..-50.0, n in 1usize..50) {
        let mut up = EtxEstimator::from_rss(Dbm(init_rss));
        let before_up = up.etx();
        for _ in 0..n {
            up.record(false);
        }
        prop_assert!(up.etx() >= before_up - 1e-9);

        let mut down = EtxEstimator::from_rss(Dbm(init_rss));
        let before_down = down.etx();
        for _ in 0..n {
            down.record(true);
        }
        prop_assert!(down.etx() <= before_down + 1e-9);
    }

    /// Trickle fires at least once and at most twice per interval-worth of
    /// slots, never fires when suppressed, and the interval never exceeds
    /// Imax.
    #[test]
    fn trickle_rate_bounds(seed in 0u64..1000, imin in 2u64..50) {
        let imax = imin * 8;
        let cfg = TrickleConfig { imin, imax, k: 0 };
        let mut t = Trickle::new(cfg, seed, Asn(0));
        let horizon = imax * 20;
        let fires = (0..horizon).filter(|s| t.tick(Asn(*s))).count() as u64;
        // At steady state (Imax) the timer fires once per Imax; during
        // doubling it fires faster. Bounds: at least horizon/imax − small
        // slack, at most horizon/imin + doubling phase.
        prop_assert!(fires >= horizon / imax - 2, "fires {}", fires);
        prop_assert!(fires <= horizon / imin + 8, "fires {}", fires);
        prop_assert!(t.interval() <= imax);
    }

    /// Trickle reset always shrinks the interval back to Imin.
    #[test]
    fn trickle_reset_restores_imin(seed in 0u64..1000, warm in 0u64..2000) {
        let cfg = TrickleConfig::fast();
        let mut t = Trickle::new(cfg, seed, Asn(0));
        for s in 0..warm {
            t.tick(Asn(s));
        }
        t.reset(Asn(warm));
        prop_assert_eq!(t.interval(), cfg.imin);
    }

    /// The neighbor table's accumulated cost is always at least the
    /// advertised cost plus 1 (one transmission minimum).
    #[test]
    fn accumulated_cost_lower_bound(
        cost in 0.0f64..20.0,
        rss in -110.0f64..-40.0,
        rank in 1u16..10
    ) {
        let mut t = NeighborTable::new();
        t.record_advertisement(NodeId(1), Rank(rank), cost, Dbm(rss), Asn(0));
        let e = t.get(NodeId(1)).expect("present");
        prop_assert!(e.accumulated_cost() >= cost + 1.0 - 1e-9);
    }

    /// DiGS parent selection never produces a best parent whose advertised
    /// rank is not strictly below the node's own rank, regardless of the
    /// join-in order.
    #[test]
    fn digs_rank_monotonicity(
        events in prop::collection::vec((0u16..15, 1u16..6, 0.0f64..6.0, -88.0f64..-50.0), 1..80)
    ) {
        let mut node = DigsRouting::new(NodeId(99), false, RoutingConfig::fast(), 3, Asn::ZERO);
        for (i, (from, rank, cost, rss)) in events.iter().enumerate() {
            let msg = JoinIn {
                rank: Rank(*rank),
                etx_w: *cost,
                best_parent: None,
                second_parent: None,
            };
            node.on_join_in(NodeId(*from), &msg, Dbm(*rss), Asn(i as u64));
            if let Some(best) = node.best_parent() {
                let parent_rank = node.neighbors().get(best).expect("known").rank;
                prop_assert!(parent_rank < node.rank());
            }
            if let Some(second) = node.second_best_parent() {
                let second_rank = node.neighbors().get(second).expect("known").rank;
                prop_assert!(second_rank < node.rank(), "paper's same-rank rule");
            }
        }
    }

    /// RPL parent selection keeps the same invariant with one parent.
    #[test]
    fn rpl_rank_monotonicity(
        events in prop::collection::vec((0u16..15, 1u16..6, 0.0f64..6.0, -88.0f64..-50.0), 1..80)
    ) {
        let mut node = RplRouting::new(NodeId(99), false, RoutingConfig::fast(), 3, Asn::ZERO);
        for (i, (from, rank, cost, rss)) in events.iter().enumerate() {
            let dio = digs_routing::messages::Dio {
                rank: Rank(*rank),
                path_etx: *cost,
                parent: None,
            };
            node.on_dio(NodeId(*from), &dio, Dbm(*rss), Asn(i as u64));
            if let Some(p) = node.preferred_parent() {
                let parent_rank = node.neighbors().get(p).expect("known").rank;
                prop_assert!(parent_rank < node.rank());
            }
        }
    }

    /// Weighted ETX (Eq. 1–3) always lies between the primary-path cost
    /// and the backup-path cost.
    #[test]
    fn weighted_etx_is_a_convex_mix(
        rss_a in -85.0f64..-50.0,
        rss_b in -85.0f64..-50.0,
        cost_b in 0.0f64..5.0
    ) {
        let mut node = DigsRouting::new(NodeId(99), false, RoutingConfig::fast(), 3, Asn::ZERO);
        node.on_join_in(
            NodeId(0),
            &JoinIn { rank: Rank::ROOT, etx_w: 0.0, best_parent: None, second_parent: None },
            Dbm(rss_a),
            Asn(0),
        );
        node.on_join_in(
            NodeId(1),
            &JoinIn { rank: Rank::ROOT, etx_w: cost_b, best_parent: None, second_parent: None },
            Dbm(rss_b),
            Asn(1),
        );
        prop_assume!(node.second_best_parent().is_some());
        let best = node.best_parent().expect("joined");
        let second = node.second_best_parent().expect("assumed");
        let c_best = node.accumulated_etx(best).expect("known");
        let c_second = node.accumulated_etx(second).expect("known");
        let w = node.etx_w();
        let (lo, hi) = if c_best <= c_second { (c_best, c_second) } else { (c_second, c_best) };
        prop_assert!(w >= lo - 1e-9 && w <= hi + 1e-9, "{lo} ≤ {w} ≤ {hi}");
    }
}
