//! Expected transmission count (ETX) estimation.
//!
//! A link's ETX is initialised from the received signal strength of the
//! first frame heard from the neighbor (the paper's RSS→ETX mapping) and is
//! then updated from acknowledgement outcomes with an EWMA over the delivery
//! probability, so that "the ETX value gets penalized if a transmission
//! error occurs (e.g., no ACK)".

use digs_sim::rf::{initial_etx_from_rss, Dbm};

/// Upper bound on an estimated link ETX; links worse than this are useless.
pub const ETX_CAP: f64 = 10.0;

/// EWMA weight on history when folding in a new transmission outcome.
/// A long memory keeps bursty interference from stampeding parent
/// selection — route diversity, not parent churn, is DiGS's answer to
/// transient loss.
pub const EWMA_ALPHA: f64 = 0.95;

/// Per-link ETX estimator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EtxEstimator {
    /// Smoothed delivery probability of a single transmission attempt.
    prr: f64,
}

impl EtxEstimator {
    /// Initialises the estimator from the RSS of the first frame heard from
    /// the neighbor, per the paper's mapping.
    pub fn from_rss(rss: Dbm) -> EtxEstimator {
        let etx = initial_etx_from_rss(rss);
        EtxEstimator { prr: 1.0 / etx }
    }

    /// Initialises from a known ETX value (used by oracle/centralized code).
    ///
    /// # Panics
    ///
    /// Panics if `etx < 1`.
    pub fn from_etx(etx: f64) -> EtxEstimator {
        assert!(etx >= 1.0, "ETX cannot be below 1, got {etx}");
        EtxEstimator { prr: (1.0 / etx).max(1.0 / ETX_CAP) }
    }

    /// Current ETX estimate (≥ 1, capped at [`ETX_CAP`]).
    pub fn etx(&self) -> f64 {
        (1.0 / self.prr.max(1.0 / ETX_CAP)).min(ETX_CAP)
    }

    /// Folds in the outcome of one unicast transmission attempt to the
    /// neighbor.
    pub fn record(&mut self, acked: bool) {
        let sample = if acked { 1.0 } else { 0.0 };
        self.prr = EWMA_ALPHA * self.prr + (1.0 - EWMA_ALPHA) * sample;
    }

    /// Refreshes the estimate toward a newly observed RSS without discarding
    /// transmission history (light nudge; broadcast receptions carry some
    /// information too).
    pub fn observe_rss(&mut self, rss: Dbm) {
        let fresh = 1.0 / initial_etx_from_rss(rss);
        self.prr = 0.98 * self.prr + 0.02 * fresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialised_from_strong_rss() {
        let e = EtxEstimator::from_rss(Dbm(-50.0));
        assert!((e.etx() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn initialised_from_weak_rss() {
        let e = EtxEstimator::from_rss(Dbm(-95.0));
        assert!((e.etx() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn failures_penalise() {
        let mut e = EtxEstimator::from_rss(Dbm(-50.0));
        let before = e.etx();
        e.record(false);
        assert!(e.etx() > before, "a missed ACK must raise ETX");
    }

    #[test]
    fn successes_recover() {
        let mut e = EtxEstimator::from_rss(Dbm(-50.0));
        for _ in 0..10 {
            e.record(false);
        }
        let degraded = e.etx();
        for _ in 0..40 {
            e.record(true);
        }
        assert!(e.etx() < degraded, "sustained success must lower ETX");
        assert!(e.etx() < 1.5);
    }

    #[test]
    fn etx_is_capped() {
        let mut e = EtxEstimator::from_rss(Dbm(-95.0));
        for _ in 0..200 {
            e.record(false);
        }
        assert!(e.etx() <= ETX_CAP + 1e-9);
        assert!(e.etx() >= ETX_CAP - 1e-9);
    }

    #[test]
    fn etx_never_below_one() {
        let mut e = EtxEstimator::from_rss(Dbm(-40.0));
        for _ in 0..200 {
            e.record(true);
        }
        assert!(e.etx() >= 1.0);
    }

    #[test]
    fn from_etx_roundtrip() {
        let e = EtxEstimator::from_etx(2.5);
        assert!((e.etx() - 2.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "ETX cannot be below 1")]
    fn from_etx_rejects_sub_one() {
        let _ = EtxEstimator::from_etx(0.5);
    }

    #[test]
    fn rss_observation_nudges_gently() {
        let mut e = EtxEstimator::from_rss(Dbm(-50.0));
        e.observe_rss(Dbm(-95.0));
        // One weak-RSS overheard frame should not destroy a good link.
        assert!(e.etx() < 1.2);
    }
}
