//! Routing-graph snapshots and structural validation.
//!
//! A [`RoutingGraph`] captures, at one instant, every node's parent set.
//! The experiment harness snapshots the distributed state to measure repair
//! convergence; tests use the validators to check the WirelessHART
//! structural requirements (DAG-ness, ≥ 2 outgoing paths, reachability).

use crate::messages::Rank;
use digs_sim::ids::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One node's entry in a routing-graph snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct GraphEntry {
    /// Primary (best) parent.
    pub best: Option<NodeId>,
    /// Backup (second-best) parent.
    pub second: Option<NodeId>,
    /// The node's rank at snapshot time.
    pub rank: Rank,
}

/// A snapshot of the whole network's routing state.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoutingGraph {
    roots: BTreeSet<NodeId>,
    entries: BTreeMap<NodeId, GraphEntry>,
}

impl RoutingGraph {
    /// Creates an empty snapshot with the given roots (access points).
    pub fn new(roots: impl IntoIterator<Item = NodeId>) -> RoutingGraph {
        RoutingGraph { roots: roots.into_iter().collect(), entries: BTreeMap::new() }
    }

    /// Records one node's parents.
    pub fn insert(&mut self, node: NodeId, entry: GraphEntry) {
        self.entries.insert(node, entry);
    }

    /// The access points.
    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.roots.iter().copied()
    }

    /// Looks up one node's entry.
    pub fn entry(&self, node: NodeId) -> Option<&GraphEntry> {
        self.entries.get(&node)
    }

    /// All recorded field devices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.keys().copied()
    }

    /// Number of recorded field devices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot records no devices.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Outgoing parents of a node (0, 1, or 2).
    pub fn parents(&self, node: NodeId) -> Vec<NodeId> {
        match self.entries.get(&node) {
            None => Vec::new(),
            Some(e) => e.best.into_iter().chain(e.second).collect(),
        }
    }

    /// Whether every joined node can reach a root by following parent
    /// links (primary or backup).
    pub fn all_reachable(&self) -> bool {
        self.unreachable_nodes().is_empty()
    }

    /// Joined nodes that cannot reach any root.
    pub fn unreachable_nodes(&self) -> Vec<NodeId> {
        // BFS backwards from the roots over the reversed parent relation.
        let mut reach: BTreeSet<NodeId> = self.roots.clone();
        let mut queue: VecDeque<NodeId> = self.roots.iter().copied().collect();
        // children[p] = nodes with p as a parent
        let mut children: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for (node, e) in &self.entries {
            for p in e.best.into_iter().chain(e.second) {
                children.entry(p).or_default().push(*node);
            }
        }
        while let Some(p) = queue.pop_front() {
            if let Some(kids) = children.get(&p) {
                for k in kids {
                    if reach.insert(*k) {
                        queue.push_back(*k);
                    }
                }
            }
        }
        self.entries
            .iter()
            .filter(|(node, e)| e.best.is_some() && !reach.contains(node))
            .map(|(node, _)| *node)
            .collect()
    }

    /// Whether the graph is acyclic over the union of primary and backup
    /// edges.
    pub fn is_dag(&self) -> bool {
        // Kahn's algorithm over parent edges node→parent.
        let mut out_degree: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut incoming: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut all: BTreeSet<NodeId> = self.roots.clone();
        for (node, e) in &self.entries {
            all.insert(*node);
            let parents: Vec<NodeId> = e.best.into_iter().chain(e.second).collect();
            out_degree.insert(*node, parents.len());
            for p in parents {
                all.insert(p);
                incoming.entry(p).or_default().push(*node);
            }
        }
        let mut queue: VecDeque<NodeId> =
            all.iter().filter(|n| out_degree.get(n).copied().unwrap_or(0) == 0).copied().collect();
        let mut removed = 0usize;
        while let Some(n) = queue.pop_front() {
            removed += 1;
            if let Some(deps) = incoming.get(&n) {
                for d in deps.clone() {
                    let deg = out_degree.get_mut(&d).expect("known node");
                    *deg -= 1;
                    if *deg == 0 {
                        queue.push_back(d);
                    }
                }
            }
        }
        removed == all.len()
    }

    /// Whether every joined node satisfies WirelessHART's requirement of at
    /// least two outgoing paths (where it has an eligible second parent —
    /// rank-2 nodes adjacent only to the APs may legitimately have just
    /// one in sparse corners, so callers decide how strict to be).
    pub fn fraction_with_backup(&self) -> f64 {
        let joined: Vec<&GraphEntry> = self.entries.values().filter(|e| e.best.is_some()).collect();
        if joined.is_empty() {
            return 0.0;
        }
        joined.iter().filter(|e| e.second.is_some()).count() as f64 / joined.len() as f64
    }

    /// The primary **downlink** path from an access point to `node`: the
    /// reverse of the node's best-parent chain (the paper's footnote 2 —
    /// "other graphs such as downlink graph and broadcast graph can be
    /// generated following the same method"). WirelessHART source-routes
    /// downlink commands along exactly this path. Returns `None` if the
    /// node is detached or the chain does not terminate at a root within
    /// 32 hops.
    pub fn primary_downlink_path(&self, node: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![node];
        let mut cursor = node;
        for _ in 0..32 {
            if self.roots.contains(&cursor) {
                path.reverse();
                return Some(path);
            }
            cursor = self.entries.get(&cursor)?.best?;
            path.push(cursor);
        }
        None
    }

    /// The **broadcast graph**: the set of parent→child edges over which a
    /// flood from the access points reaches every attached device (the
    /// reversal of the union of primary and backup uplink edges). Edges
    /// are returned in deterministic (parent, child) order.
    pub fn broadcast_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges: Vec<(NodeId, NodeId)> = self
            .entries
            .iter()
            .flat_map(|(child, e)| {
                e.best.into_iter().chain(e.second).map(move |parent| (parent, *child))
            })
            .collect();
        edges.sort();
        edges.dedup();
        edges
    }

    /// Whether a flood over [`RoutingGraph::broadcast_edges`] starting at
    /// the roots reaches every joined device — the correctness condition of
    /// the broadcast graph (equivalent to uplink reachability, asserted
    /// independently here).
    pub fn broadcast_covers_all(&self) -> bool {
        let mut reached: BTreeSet<NodeId> = self.roots.clone();
        let edges = self.broadcast_edges();
        // Breadth-first over the edge list (small graphs; simplicity wins).
        let mut changed = true;
        while changed {
            changed = false;
            for (parent, child) in &edges {
                if reached.contains(parent) && reached.insert(*child) {
                    changed = true;
                }
            }
        }
        self.entries
            .iter()
            .filter(|(_, e)| e.best.is_some())
            .all(|(node, _)| reached.contains(node))
    }

    /// Fraction of recorded nodes that are joined (have a best parent).
    pub fn fraction_joined(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.values().filter(|e| e.best.is_some()).count() as f64
            / self.entries.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(best: Option<u16>, second: Option<u16>, rank: u16) -> GraphEntry {
        GraphEntry { best: best.map(NodeId), second: second.map(NodeId), rank: Rank(rank) }
    }

    /// The paper's Fig. 6 example: APs 0, 1 (standing in for AP1/AP2);
    /// devices 3–6 with primary #3→#4→#6→AP2, #5→AP1 and backups
    /// #3→#5, #4→#5, #5→AP2, #6→AP1.
    fn figure6() -> RoutingGraph {
        let mut g = RoutingGraph::new([NodeId(0), NodeId(1)]);
        g.insert(NodeId(5), entry(Some(0), Some(1), 2));
        g.insert(NodeId(6), entry(Some(1), Some(0), 2));
        g.insert(NodeId(4), entry(Some(6), Some(5), 3));
        g.insert(NodeId(3), entry(Some(4), Some(5), 4));
        g
    }

    #[test]
    fn figure6_is_valid() {
        let g = figure6();
        assert!(g.is_dag());
        assert!(g.all_reachable());
        assert_eq!(g.fraction_with_backup(), 1.0);
        assert_eq!(g.fraction_joined(), 1.0);
        assert_eq!(g.parents(NodeId(3)), vec![NodeId(4), NodeId(5)]);
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = RoutingGraph::new([NodeId(0)]);
        g.insert(NodeId(2), entry(Some(3), None, 2));
        g.insert(NodeId(3), entry(Some(2), None, 3));
        assert!(!g.is_dag());
    }

    #[test]
    fn two_cycle_through_backup_detected() {
        let mut g = RoutingGraph::new([NodeId(0)]);
        g.insert(NodeId(2), entry(Some(0), Some(3), 2));
        g.insert(NodeId(3), entry(Some(0), Some(2), 2));
        assert!(!g.is_dag());
    }

    #[test]
    fn orphan_is_unreachable() {
        let mut g = RoutingGraph::new([NodeId(0)]);
        g.insert(NodeId(2), entry(Some(0), None, 2));
        g.insert(NodeId(3), entry(Some(9), None, 3)); // parent 9 is not attached
        assert!(!g.all_reachable());
        assert_eq!(g.unreachable_nodes(), vec![NodeId(3)]);
    }

    #[test]
    fn detached_node_not_counted_unreachable() {
        let mut g = RoutingGraph::new([NodeId(0)]);
        g.insert(NodeId(2), entry(None, None, u16::MAX));
        // Detached (no best parent) is "not joined", not "unreachable".
        assert!(g.all_reachable());
        assert_eq!(g.fraction_joined(), 0.0);
    }

    #[test]
    fn empty_graph() {
        let g = RoutingGraph::new([NodeId(0)]);
        assert!(g.is_empty());
        assert!(g.is_dag());
        assert!(g.all_reachable());
        assert_eq!(g.fraction_with_backup(), 0.0);
    }

    #[test]
    fn downlink_path_reverses_uplink_chain() {
        let g = figure6();
        // Uplink: #3 → #4 → #6 → AP(1); downlink is the exact reverse.
        assert_eq!(
            g.primary_downlink_path(NodeId(3)),
            Some(vec![NodeId(1), NodeId(6), NodeId(4), NodeId(3)])
        );
        assert_eq!(g.primary_downlink_path(NodeId(5)), Some(vec![NodeId(0), NodeId(5)]));
    }

    #[test]
    fn downlink_path_missing_for_detached_node() {
        let mut g = RoutingGraph::new([NodeId(0)]);
        g.insert(NodeId(2), entry(None, None, u16::MAX));
        assert_eq!(g.primary_downlink_path(NodeId(2)), None);
        assert_eq!(g.primary_downlink_path(NodeId(9)), None);
    }

    #[test]
    fn broadcast_edges_reverse_all_parent_links() {
        let g = figure6();
        let edges = g.broadcast_edges();
        assert!(edges.contains(&(NodeId(4), NodeId(3))), "primary edge reversed");
        assert!(edges.contains(&(NodeId(5), NodeId(3))), "backup edge reversed");
        // 4 devices × 2 parents = 8 edges.
        assert_eq!(edges.len(), 8);
    }

    #[test]
    fn broadcast_reaches_every_joined_device() {
        assert!(figure6().broadcast_covers_all());
        // A device hanging off an unattached parent is not covered.
        let mut g = RoutingGraph::new([NodeId(0)]);
        g.insert(NodeId(3), entry(Some(9), None, 3));
        assert!(!g.broadcast_covers_all());
    }

    #[test]
    fn backup_fraction_counts_only_joined() {
        let mut g = RoutingGraph::new([NodeId(0)]);
        g.insert(NodeId(2), entry(Some(0), Some(1), 2));
        g.insert(NodeId(3), entry(Some(0), None, 2));
        g.insert(NodeId(4), entry(None, None, u16::MAX));
        assert!((g.fraction_with_backup() - 0.5).abs() < 1e-12);
    }
}
