//! The RPL baseline (RFC 6550, simplified): the distance-vector routing
//! protocol with a **single preferred parent** that Orchestra schedules on
//! top of.
//!
//! Differences from [`crate::digs::DigsRouting`], mirroring the paper's
//! comparison:
//!
//! - one preferred parent only — no backup route;
//! - DIO advertisements carry the plain accumulated path ETX;
//! - on parent loss the node *detaches* (infinite rank), poisons its
//!   sub-DODAG with an infinite-rank DIO, and must wait for fresh DIOs to
//!   rejoin — the source of RPL's long repair times under interference and
//!   node failure.

use crate::digs::RoutingConfig;
use crate::messages::{Dio, Rank, RoutingEvent};
use crate::neighbor::NeighborTable;
use crate::trickle::Trickle;
use digs_sim::ids::NodeId;
use digs_sim::rf::Dbm;
use digs_sim::time::Asn;

/// The per-node RPL state machine.
#[derive(Debug, Clone)]
pub struct RplRouting {
    id: NodeId,
    is_root: bool,
    config: RoutingConfig,
    trickle: Trickle,
    neighbors: NeighborTable,
    preferred: Option<NodeId>,
    rank: Rank,
    /// Pending poison: broadcast one infinite-rank DIO after detaching.
    poison_pending: bool,
    joined_at: Option<Asn>,
    lockout_until: Asn,
    parent_changes: u64,
    last_parent_change: Option<Asn>,
}

impl RplRouting {
    /// Creates the state machine; the root (border router / access point)
    /// starts at rank 1 with path ETX 0.
    pub fn new(
        id: NodeId,
        is_root: bool,
        config: RoutingConfig,
        seed: u64,
        now: Asn,
    ) -> RplRouting {
        RplRouting {
            id,
            is_root,
            config,
            trickle: Trickle::new(config.trickle, seed ^ u64::from(id.0) << 21, now),
            neighbors: NeighborTable::new(),
            preferred: None,
            rank: if is_root { Rank::ROOT } else { Rank::INFINITE },
            poison_pending: false,
            lockout_until: Asn::ZERO,
            joined_at: if is_root { Some(now) } else { None },
            parent_changes: 0,
            last_parent_change: None,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether this node is the DODAG root.
    pub fn is_root(&self) -> bool {
        self.is_root
    }

    /// Current rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Current preferred parent.
    pub fn preferred_parent(&self) -> Option<NodeId> {
        self.preferred
    }

    /// Whether the node has joined the DODAG.
    pub fn is_joined(&self) -> bool {
        self.is_root || self.preferred.is_some()
    }

    /// When the node first joined, if it has.
    pub fn joined_at(&self) -> Option<Asn> {
        self.joined_at
    }

    /// Number of parent changes so far (repair telemetry).
    pub fn parent_changes(&self) -> u64 {
        self.parent_changes
    }

    /// When the parent last changed (repair telemetry).
    pub fn last_parent_change(&self) -> Option<Asn> {
        self.last_parent_change
    }

    /// Read access to the neighbor table.
    pub fn neighbors(&self) -> &NeighborTable {
        &self.neighbors
    }

    /// Accumulated path ETX advertised in our DIOs.
    pub fn path_etx(&self) -> f64 {
        if self.is_root {
            return 0.0;
        }
        self.preferred
            .and_then(|p| self.neighbors.get(p))
            .map_or(f64::INFINITY, |e| e.accumulated_cost())
    }

    /// The DIO the node would broadcast right now.
    pub fn dio(&self) -> Dio {
        Dio { rank: self.rank, path_etx: self.path_etx(), parent: self.preferred }
    }

    /// Handles a received DIO.
    pub fn on_dio(&mut self, from: NodeId, dio: &Dio, rss: Dbm, now: Asn) -> Vec<RoutingEvent> {
        self.trickle.hear_consistent();
        if from == self.id {
            return Vec::new();
        }
        self.neighbors.record_advertisement(from, dio.rank, dio.path_etx, rss, now);
        if self.is_root {
            return Vec::new();
        }
        self.reevaluate(now)
    }

    /// Handles the outcome of a unicast transmission to `to`.
    pub fn on_tx_result(&mut self, to: NodeId, acked: bool, now: Asn) -> Vec<RoutingEvent> {
        let Some(failures) = self.neighbors.record_tx(to, acked) else {
            return Vec::new();
        };
        if self.preferred == Some(to) && failures >= self.config.parent_failure_threshold {
            self.neighbors.degrade(to);
            self.lockout_until = Asn::ZERO; // failure overrides the lockout
            return self.reevaluate(now);
        }
        Vec::new()
    }

    /// Per-slot housekeeping: eviction, poison emission, Trickle-paced DIOs.
    pub fn tick(&mut self, now: Asn) -> Vec<RoutingEvent> {
        let mut events = Vec::new();
        if now.0 % 64 == u64::from(self.id.0) % 64 && now.0 >= self.config.neighbor_timeout {
            let horizon = Asn(now.0 - self.config.neighbor_timeout);
            let evicted = self.neighbors.evict_stale(horizon);
            if evicted.iter().any(|id| self.preferred == Some(*id)) {
                self.lockout_until = Asn::ZERO;
                events.extend(self.reevaluate(now));
            }
        }
        if self.poison_pending {
            self.poison_pending = false;
            events.push(RoutingEvent::BroadcastDio(Dio {
                rank: Rank::INFINITE,
                path_etx: f64::INFINITY,
                parent: None,
            }));
        }
        if self.trickle.tick(now) && self.is_joined() {
            events.push(RoutingEvent::BroadcastDio(self.dio()));
        }
        events
    }

    /// Standard RPL parent selection: cheapest neighbor whose rank is
    /// strictly below ours-to-be, with hysteresis.
    fn reevaluate(&mut self, now: Asn) -> Vec<RoutingEvent> {
        debug_assert!(!self.is_root);
        let old = self.preferred;

        let mut candidates: Vec<(NodeId, f64, Rank)> = self
            .neighbors
            .iter()
            .filter(|(_, e)| {
                e.rank.is_finite()
                    && e.advertised_cost.is_finite()
                    && e.last_rss.dbm() >= digs_sim::rf::RSS_MIN.dbm()
            })
            .map(|(id, e)| (id, e.accumulated_cost(), e.rank))
            .collect();
        candidates.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite").then(a.2.cmp(&b.2)).then(a.0.cmp(&b.0))
        });

        // Rank rule: once joined, never select a parent whose rank is not
        // strictly below our own (loop avoidance); a detached node may pick
        // anyone.
        let eligible = |rank: Rank| -> bool {
            if self.rank.is_finite() {
                rank < self.rank
            } else {
                true
            }
        };
        let new = match candidates.iter().find(|(_, _, r)| eligible(*r)) {
            None => None,
            Some(&(challenger, ccost, _)) => {
                // Incumbents must pass the same eligibility bar as
                // challengers (finite rank/cost, usable RSS).
                let incumbent = old.and_then(|p| {
                    candidates.iter().find(|(id, _, _)| *id == p).map(|(_, cost, _)| (p, *cost))
                });
                match incumbent {
                    Some((p, cost))
                        if challenger != p
                            && (ccost + self.config.hysteresis >= cost
                                || now < self.lockout_until) =>
                    {
                        Some(p)
                    }
                    _ => Some(challenger),
                }
            }
        };

        let new_rank = match new.and_then(|p| self.neighbors.get(p)) {
            Some(e) => e.rank.deeper(),
            None => Rank::INFINITE,
        };
        let detaching = self.rank.is_finite() && !new_rank.is_finite();
        self.rank = new_rank;
        if new == old {
            return Vec::new();
        }
        self.preferred = new;
        self.parent_changes += 1;
        self.last_parent_change = Some(now);
        self.lockout_until = Asn(now.0 + self.config.switch_lockout);
        if self.joined_at.is_none() && new.is_some() {
            self.joined_at = Some(now);
        }
        self.trickle.reset(now);
        if detaching {
            self.poison_pending = true;
        }
        vec![RoutingEvent::ParentsChanged { best: new, second: None }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRONG: Dbm = Dbm(-55.0);

    fn device(id: u16) -> RplRouting {
        RplRouting::new(NodeId(id), false, RoutingConfig::fast(), 1, Asn(0))
    }

    fn root_dio() -> Dio {
        Dio { rank: Rank::ROOT, path_etx: 0.0, parent: None }
    }

    #[test]
    fn joins_on_first_dio() {
        let mut d = device(5);
        d.on_dio(NodeId(0), &root_dio(), STRONG, Asn(1));
        assert_eq!(d.preferred_parent(), Some(NodeId(0)));
        assert_eq!(d.rank(), Rank(2));
        assert!(d.is_joined());
    }

    #[test]
    fn single_parent_only() {
        let mut d = device(5);
        d.on_dio(NodeId(0), &root_dio(), STRONG, Asn(1));
        d.on_dio(NodeId(1), &root_dio(), STRONG, Asn(2));
        // Still exactly one preferred parent.
        assert!(d.preferred_parent().is_some());
    }

    #[test]
    fn rank_rule_blocks_deeper_parents() {
        let mut d = device(5);
        d.on_dio(NodeId(0), &root_dio(), Dbm(-88.0), Asn(1));
        assert_eq!(d.rank(), Rank(2));
        // A rank-5 node advertises an attractive cost; rank rule forbids it.
        d.on_dio(NodeId(9), &Dio { rank: Rank(5), path_etx: 0.1, parent: None }, STRONG, Asn(2));
        assert_eq!(d.preferred_parent(), Some(NodeId(0)));
    }

    /// Drives the node to eviction-based detachment (the parent went
    /// silent long enough to be evicted from the neighbor table).
    fn detach_by_silence(d: &mut RplRouting) -> (u64, Vec<RoutingEvent>) {
        let timeout = RoutingConfig::fast().neighbor_timeout;
        let mut now = timeout + 64;
        while now % 64 != u64::from(d.id().0) % 64 {
            now += 1;
        }
        let events = d.tick(Asn(now));
        (now, events)
    }

    #[test]
    fn parent_loss_detaches_and_poisons_when_no_alternative() {
        let mut d = device(5);
        d.on_dio(NodeId(0), &root_dio(), STRONG, Asn(1));
        let (_, events) = detach_by_silence(&mut d);
        assert!(!d.is_joined());
        assert_eq!(d.rank(), Rank::INFINITE);
        // The eviction tick emits the poison DIO along with the detach.
        assert!(
            events
                .iter()
                .any(|e| matches!(e, RoutingEvent::BroadcastDio(dio) if !dio.rank.is_finite())),
            "expected poison DIO, got {events:?}"
        );
    }

    #[test]
    fn degraded_sole_parent_is_kept() {
        let mut d = device(5);
        d.on_dio(NodeId(0), &root_dio(), STRONG, Asn(1));
        let threshold = RoutingConfig::fast().parent_failure_threshold;
        for i in 0..u64::from(threshold) {
            d.on_tx_result(NodeId(0), false, Asn(10 + i));
        }
        assert!(d.is_joined(), "no alternative: keep the degraded parent");
    }

    #[test]
    fn rejoins_after_detach_on_fresh_dio() {
        let mut d = device(5);
        d.on_dio(NodeId(0), &root_dio(), STRONG, Asn(1));
        let (now, _) = detach_by_silence(&mut d);
        assert!(!d.is_joined());
        d.on_dio(NodeId(1), &root_dio(), STRONG, Asn(now + 10));
        assert_eq!(d.preferred_parent(), Some(NodeId(1)));
        assert!(d.is_joined());
    }

    #[test]
    fn switches_to_clearly_better_parent() {
        let mut d = device(5);
        // Expensive incumbent: weak link to a deep node (acc ≈ 5.9).
        d.on_dio(
            NodeId(7),
            &Dio { rank: Rank(2), path_etx: 3.0, parent: None },
            Dbm(-88.0),
            Asn(1),
        );
        assert_eq!(d.preferred_parent(), Some(NodeId(7)));
        // A strong direct root link (acc ≈ 1.0) clears the hysteresis bar
        // once the voluntary-switch lockout has expired.
        let after_lockout = Asn(2 + RoutingConfig::fast().switch_lockout);
        d.on_dio(NodeId(1), &root_dio(), STRONG, after_lockout);
        assert_eq!(d.preferred_parent(), Some(NodeId(1)));
    }

    #[test]
    fn path_etx_accumulates() {
        let mut d = device(5);
        d.on_dio(NodeId(7), &Dio { rank: Rank(2), path_etx: 2.0, parent: None }, STRONG, Asn(1));
        // Link ETX ≈ 1 → path ≈ 3.
        assert!((d.path_etx() - 3.0).abs() < 0.05);
    }

    #[test]
    fn root_advertises_zero() {
        let r = RplRouting::new(NodeId(0), true, RoutingConfig::fast(), 1, Asn(0));
        assert_eq!(r.path_etx(), 0.0);
        assert_eq!(r.rank(), Rank::ROOT);
        assert!(r.is_joined());
    }

    #[test]
    fn trickle_paces_dios() {
        let mut d = device(5);
        d.on_dio(NodeId(0), &root_dio(), STRONG, Asn(1));
        let mut emitted = 0;
        for s in 2..200u64 {
            emitted += d
                .tick(Asn(s))
                .iter()
                .filter(|e| matches!(e, RoutingEvent::BroadcastDio(_)))
                .count();
        }
        assert!(emitted > 0);
    }
}
