//! Routing-plane wire messages and state-machine outputs.

use core::fmt;
use digs_sim::ids::NodeId;

/// A node's rank: its hop-distance-derived position in the DAG. Access
/// points have rank 1; a field device's rank is its best parent's rank + 1.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Rank(pub u16);

impl Rank {
    /// Rank of the access points.
    pub const ROOT: Rank = Rank(1);
    /// Rank of a node that has not joined the network.
    pub const INFINITE: Rank = Rank(u16::MAX);

    /// Whether the node holding this rank has joined.
    pub fn is_finite(self) -> bool {
        self != Rank::INFINITE
    }

    /// One deeper than `self`.
    ///
    /// # Panics
    ///
    /// Panics if called on [`Rank::INFINITE`].
    pub fn deeper(self) -> Rank {
        assert!(self.is_finite(), "cannot deepen an infinite rank");
        Rank(self.0.saturating_add(1))
    }
}

impl Default for Rank {
    /// The default rank is [`Rank::INFINITE`] (not yet joined).
    fn default() -> Rank {
        Rank::INFINITE
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "rank {}", self.0)
        } else {
            f.write_str("rank ∞")
        }
    }
}

/// The join-in broadcast (DiGS): advertises the sender's rank and weighted
/// ETX so neighbors can evaluate it as a parent (paper Section V).
///
/// In addition to the paper's `(rank, ETXw)` pair, our join-in carries the
/// sender's current parent selections. Hearing a join-in therefore lets a
/// parent *refresh* its child table even when the joined-callback unicast
/// was lost — without this, a lost callback leaves the parent's autonomous
/// schedule permanently missing the child's receive cells (two node ids of
/// extra payload buy schedule self-healing).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JoinIn {
    /// Sender's rank.
    pub rank: Rank,
    /// Sender's weighted ETX to the access points (Eq. 1).
    pub etx_w: f64,
    /// Sender's current best parent.
    pub best_parent: Option<NodeId>,
    /// Sender's current second-best parent.
    pub second_parent: Option<NodeId>,
}

/// Which parent slot a joined-callback refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ParentSlot {
    /// The primary (best) parent.
    Best,
    /// The backup (second-best) parent.
    SecondBest,
}

/// The joined-callback unicast (DiGS): tells a node it has been selected
/// (or dropped) as a parent, so it can maintain its child table — which
/// both feeds the autonomous scheduler's receive cells and excludes
/// children from parent candidacy (loop avoidance).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JoinedCallback {
    /// Which role the sender assigned to the addressee.
    pub slot: ParentSlot,
    /// `false` if the sender is *revoking* a previous selection.
    pub selected: bool,
}

/// The DIO broadcast (RPL baseline): advertises rank and accumulated path
/// ETX through the single preferred parent. The preferred parent id stands
/// in for RPL's DAO child registration (storing mode), which Orchestra's
/// sender-based schedule needs to derive its receive cells.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Dio {
    /// Sender's rank.
    pub rank: Rank,
    /// Sender's accumulated path ETX to the root.
    pub path_etx: f64,
    /// Sender's current preferred parent.
    pub parent: Option<NodeId>,
}

/// Output of a routing state machine, to be mapped onto frames by the node
/// stack.
#[derive(Debug, Clone, PartialEq)]
pub enum RoutingEvent {
    /// Broadcast a join-in message (DiGS).
    BroadcastJoinIn(JoinIn),
    /// Send a joined-callback to a (de)selected parent (DiGS).
    SendJoinedCallback {
        /// The parent being informed.
        to: NodeId,
        /// The callback content.
        callback: JoinedCallback,
    },
    /// Broadcast a DIO (RPL).
    BroadcastDio(Dio),
    /// The node's parent set changed (telemetry for repair-time metrics).
    ParentsChanged {
        /// New best parent, if any.
        best: Option<NodeId>,
        /// New second-best parent, if any.
        second: Option<NodeId>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_ordering() {
        assert!(Rank::ROOT < Rank(2));
        assert!(Rank(5) < Rank::INFINITE);
        assert!(!Rank::INFINITE.is_finite());
        assert!(Rank::ROOT.is_finite());
    }

    #[test]
    fn deeper_increments() {
        assert_eq!(Rank::ROOT.deeper(), Rank(2));
    }

    #[test]
    #[should_panic(expected = "cannot deepen an infinite rank")]
    fn deeper_on_infinite_panics() {
        let _ = Rank::INFINITE.deeper();
    }

    #[test]
    fn rank_display() {
        assert_eq!(Rank(3).to_string(), "rank 3");
        assert_eq!(Rank::INFINITE.to_string(), "rank ∞");
    }
}
