//! The neighbor table: per-neighbor link quality and advertised route cost.

use crate::etx::EtxEstimator;
use crate::messages::Rank;
use digs_sim::ids::NodeId;
use digs_sim::rf::Dbm;
use digs_sim::time::Asn;
use std::collections::BTreeMap;

/// State kept about one neighbor.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NeighborEntry {
    /// Link ETX estimate toward this neighbor.
    pub etx: EtxEstimator,
    /// RSS of the most recent advertisement heard from this neighbor.
    pub last_rss: Dbm,
    /// Neighbor's advertised rank.
    pub rank: Rank,
    /// Neighbor's advertised route cost (weighted ETX for DiGS, path ETX
    /// for RPL).
    pub advertised_cost: f64,
    /// When we last heard anything from this neighbor.
    pub last_heard: Asn,
    /// Consecutive unacknowledged unicast transmissions to this neighbor.
    pub consecutive_failures: u32,
}

impl NeighborEntry {
    /// Accumulated cost of routing through this neighbor: link ETX plus the
    /// neighbor's advertised cost (Algorithm 1's
    /// `ETXa(node, i) = ETX(node, i) + ETXw(i)`).
    pub fn accumulated_cost(&self) -> f64 {
        self.etx.etx() + self.advertised_cost
    }
}

/// The neighbor table, ordered by id for determinism.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NeighborTable {
    entries: BTreeMap<NodeId, NeighborEntry>,
}

impl NeighborTable {
    /// Creates an empty table.
    pub fn new() -> NeighborTable {
        NeighborTable::default()
    }

    /// Records an advertisement (join-in or DIO) from a neighbor, creating
    /// the entry on first contact with the paper's RSS-based ETX
    /// initialisation.
    pub fn record_advertisement(
        &mut self,
        from: NodeId,
        rank: Rank,
        advertised_cost: f64,
        rss: Dbm,
        now: Asn,
    ) {
        let entry = self.entries.entry(from).or_insert_with(|| NeighborEntry {
            etx: EtxEstimator::from_rss(rss),
            last_rss: rss,
            rank,
            advertised_cost,
            last_heard: now,
            consecutive_failures: 0,
        });
        // Smooth the per-advertisement RSS (channel fading makes single
        // readings noisy) so eligibility doesn't flap around RSSmin.
        entry.last_rss = Dbm(0.7 * entry.last_rss.dbm() + 0.3 * rss.dbm());
        entry.rank = rank;
        entry.advertised_cost = advertised_cost;
        entry.last_heard = now;
        // Link ETX is initialised from RSS on first contact (paper
        // Section V) but thereafter updated from transmission outcomes
        // only, as Contiki's link-stats do.
    }

    /// Records the outcome of a unicast transmission to a neighbor; returns
    /// the updated consecutive-failure count (0 after a success), or `None`
    /// if the neighbor is unknown.
    pub fn record_tx(&mut self, to: NodeId, acked: bool) -> Option<u32> {
        let entry = self.entries.get_mut(&to)?;
        entry.etx.record(acked);
        if acked {
            entry.consecutive_failures = 0;
        } else {
            entry.consecutive_failures += 1;
        }
        Some(entry.consecutive_failures)
    }

    /// Looks up a neighbor.
    pub fn get(&self, id: NodeId) -> Option<&NeighborEntry> {
        self.entries.get(&id)
    }

    /// Removes a neighbor (e.g. presumed dead); returns whether it existed.
    pub fn remove(&mut self, id: NodeId) -> bool {
        self.entries.remove(&id).is_some()
    }

    /// Degrades a neighbor's link estimate to the worst value without
    /// forgetting it: alternatives will now win parent selection, but the
    /// neighbor can rehabilitate itself through future ACKs and
    /// advertisements (gentler than [`NeighborTable::remove`], which forces
    /// a full re-discovery).
    pub fn degrade(&mut self, id: NodeId) -> bool {
        match self.entries.get_mut(&id) {
            Some(e) => {
                e.etx = crate::etx::EtxEstimator::from_etx(crate::etx::ETX_CAP);
                true
            }
            None => false,
        }
    }

    /// Iterates over neighbors in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &NeighborEntry)> {
        self.entries.iter().map(|(id, e)| (*id, e))
    }

    /// Number of known neighbors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops neighbors not heard from since `horizon`; returns the ids
    /// evicted.
    pub fn evict_stale(&mut self, horizon: Asn) -> Vec<NodeId> {
        let stale: Vec<NodeId> = self
            .entries
            .iter()
            .filter(|(_, e)| e.last_heard < horizon)
            .map(|(id, _)| *id)
            .collect();
        for id in &stale {
            self.entries.remove(id);
        }
        stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with(from: u16, rank: Rank, cost: f64) -> NeighborTable {
        let mut t = NeighborTable::new();
        t.record_advertisement(NodeId(from), rank, cost, Dbm(-55.0), Asn(0));
        t
    }

    #[test]
    fn first_contact_creates_entry() {
        let t = table_with(4, Rank(2), 1.5);
        let e = t.get(NodeId(4)).expect("entry exists");
        assert_eq!(e.rank, Rank(2));
        assert_eq!(e.advertised_cost, 1.5);
        // Strong RSS → link ETX ≈ 1 → accumulated ≈ 2.5.
        assert!((e.accumulated_cost() - 2.5).abs() < 0.05);
    }

    #[test]
    fn advertisement_updates_cost_and_rank() {
        let mut t = table_with(4, Rank(2), 1.5);
        t.record_advertisement(NodeId(4), Rank(3), 4.0, Dbm(-55.0), Asn(10));
        let e = t.get(NodeId(4)).expect("entry exists");
        assert_eq!(e.rank, Rank(3));
        assert_eq!(e.advertised_cost, 4.0);
        assert_eq!(e.last_heard, Asn(10));
    }

    #[test]
    fn tx_failures_count_consecutively() {
        let mut t = table_with(4, Rank(2), 1.0);
        assert_eq!(t.record_tx(NodeId(4), false), Some(1));
        assert_eq!(t.record_tx(NodeId(4), false), Some(2));
        assert_eq!(t.record_tx(NodeId(4), true), Some(0));
        assert_eq!(t.record_tx(NodeId(9), true), None);
    }

    #[test]
    fn eviction_drops_silent_neighbors() {
        let mut t = NeighborTable::new();
        t.record_advertisement(NodeId(1), Rank(2), 1.0, Dbm(-60.0), Asn(0));
        t.record_advertisement(NodeId(2), Rank(2), 1.0, Dbm(-60.0), Asn(500));
        let evicted = t.evict_stale(Asn(100));
        assert_eq!(evicted, vec![NodeId(1)]);
        assert!(t.get(NodeId(1)).is_none());
        assert!(t.get(NodeId(2)).is_some());
    }

    #[test]
    fn iteration_is_id_ordered() {
        let mut t = NeighborTable::new();
        for id in [5u16, 1, 3] {
            t.record_advertisement(NodeId(id), Rank(2), 1.0, Dbm(-60.0), Asn(0));
        }
        let ids: Vec<u16> = t.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }
}
