//! The DiGS distributed graph routing protocol (paper Section V,
//! Algorithm 1).
//!
//! Every field device selects a **best parent** (primary route) and a
//! **second-best parent** (backup route) toward the access points, ranked
//! by accumulated ETX `ETXa(node, i) = ETX(node, i) + ETXw(i)`. The node's
//! own advertised cost is the weighted ETX of Eq. 1–3:
//!
//! ```text
//! ETXw = ω1·ETXabp + ω2·ETXasbp
//! ω1 = 1 − (1 − 1/ETXbp)²      (both scheduled attempts via the primary)
//! ω2 = (1 − 1/ETXbp)²          (fall back to the backup route)
//! ```
//!
//! Join-in broadcasts are paced by Trickle and carry `(rank, ETXw)`;
//! joined-callback unicasts inform a selected parent so it can maintain its
//! child table. Children are excluded from parent candidacy and the
//! second-best parent must have strictly lower rank — the paper's
//! loop-avoidance rules (same-rank links are never used for routing).
//!
//! This implementation processes Algorithm 1's event-driven updates as a
//! batch re-evaluation on every received join-in, which yields the same
//! fixed point while also handling parent *loss* (consecutive missed ACKs
//! or prolonged silence), which the pseudo-code leaves implicit.

use crate::messages::{JoinIn, JoinedCallback, ParentSlot, Rank, RoutingEvent};
use crate::neighbor::NeighborTable;
use crate::trickle::{Trickle, TrickleConfig};
use digs_sim::ids::NodeId;
use digs_sim::rf::Dbm;
use digs_sim::time::Asn;
use std::collections::BTreeSet;

/// Tuning knobs for [`DigsRouting`] (and, where shared, [`crate::rpl::RplRouting`]).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RoutingConfig {
    /// Trickle timer parameters for join-in emission.
    pub trickle: TrickleConfig,
    /// Consecutive unacknowledged transmissions after which a parent is
    /// presumed unreachable and dropped.
    pub parent_failure_threshold: u32,
    /// Silence horizon (in slots) after which a neighbor is evicted.
    pub neighbor_timeout: u64,
    /// Minimum accumulated-ETX improvement required to switch best parent
    /// (hysteresis against churn).
    pub hysteresis: f64,
    /// Use the paper's weighted ETX (Eq. 1–3) as the advertised cost. When
    /// `false` (ablation), advertise the plain accumulated ETX through the
    /// best parent.
    pub use_weighted_etx: bool,
    /// Maintain a second-best parent. When `false` (ablation), the protocol
    /// degenerates to single-path routing à la RPL.
    pub use_second_parent: bool,
    /// Minimum slots between *voluntary* parent switches (cost-driven, as
    /// opposed to failure-driven, which always proceeds). Neighbor link
    /// estimates start from the optimistic RSS mapping, so an unproven
    /// challenger often looks better than a measured parent; rate-limiting
    /// voluntary switches keeps that optimism from churning the graph.
    pub switch_lockout: u64,
}

impl Default for RoutingConfig {
    fn default() -> RoutingConfig {
        RoutingConfig {
            trickle: TrickleConfig::standard(),
            parent_failure_threshold: 8,
            neighbor_timeout: 3 * TrickleConfig::standard().imax,
            hysteresis: 2.5,
            use_weighted_etx: true,
            use_second_parent: true,
            switch_lockout: 3000, // 30 s
        }
    }
}

impl RoutingConfig {
    /// A fast-converging profile for unit tests.
    pub fn fast() -> RoutingConfig {
        RoutingConfig {
            trickle: TrickleConfig::fast(),
            neighbor_timeout: 3 * TrickleConfig::fast().imax,
            ..RoutingConfig::default()
        }
    }
}

/// The per-node DiGS routing state machine. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct DigsRouting {
    id: NodeId,
    is_root: bool,
    config: RoutingConfig,
    trickle: Trickle,
    neighbors: NeighborTable,
    best: Option<NodeId>,
    second: Option<NodeId>,
    rank: Rank,
    children: BTreeSet<NodeId>,
    joined_at: Option<Asn>,
    parent_changes: u64,
    last_parent_change: Option<Asn>,
    /// Voluntary switches are suppressed until this slot.
    lockout_until: Asn,
}

impl DigsRouting {
    /// Creates the state machine. Access points (`is_root`) start at rank 1
    /// with `ETXw = 0` and immediately begin advertising; field devices
    /// start detached at infinite rank.
    pub fn new(
        id: NodeId,
        is_root: bool,
        config: RoutingConfig,
        seed: u64,
        now: Asn,
    ) -> DigsRouting {
        DigsRouting {
            id,
            is_root,
            config,
            trickle: Trickle::new(config.trickle, seed ^ u64::from(id.0) << 17, now),
            neighbors: NeighborTable::new(),
            best: None,
            second: None,
            rank: if is_root { Rank::ROOT } else { Rank::INFINITE },
            children: BTreeSet::new(),
            joined_at: if is_root { Some(now) } else { None },
            parent_changes: 0,
            last_parent_change: None,
            lockout_until: Asn::ZERO,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether this node is an access point.
    pub fn is_root(&self) -> bool {
        self.is_root
    }

    /// Current rank.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Current best (primary) parent.
    pub fn best_parent(&self) -> Option<NodeId> {
        self.best
    }

    /// Current second-best (backup) parent.
    pub fn second_best_parent(&self) -> Option<NodeId> {
        self.second
    }

    /// Nodes that selected us as one of their parents.
    pub fn children(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.children.iter().copied()
    }

    /// Whether the given node is currently one of our children.
    pub fn has_child(&self, id: NodeId) -> bool {
        self.children.contains(&id)
    }

    /// Whether the node has joined the routing graph (roots always have).
    pub fn is_joined(&self) -> bool {
        self.is_root || self.best.is_some()
    }

    /// When the node first joined, if it has.
    pub fn joined_at(&self) -> Option<Asn> {
        self.joined_at
    }

    /// Number of parent-set changes so far (repair telemetry).
    pub fn parent_changes(&self) -> u64 {
        self.parent_changes
    }

    /// When the parent set last changed (repair telemetry).
    pub fn last_parent_change(&self) -> Option<Asn> {
        self.last_parent_change
    }

    /// Read access to the neighbor table.
    pub fn neighbors(&self) -> &NeighborTable {
        &self.neighbors
    }

    /// Current Trickle interval in slots (doubles while the DODAG is
    /// quiet, resets on inconsistency) — a cheap convergence-state gauge
    /// for the telemetry layer.
    pub fn trickle_interval(&self) -> u64 {
        self.trickle.interval()
    }

    /// Accumulated ETX to the access points through `via` (Algorithm 1's
    /// `ETXa`), or `None` if `via` is unknown.
    pub fn accumulated_etx(&self, via: NodeId) -> Option<f64> {
        self.neighbors.get(via).map(|e| e.accumulated_cost())
    }

    /// The node's advertised cost: the weighted ETX of Eq. 1–3 (or, for the
    /// ablation, the plain accumulated ETX through the best parent).
    /// Roots advertise 0; detached nodes advertise infinity.
    pub fn etx_w(&self) -> f64 {
        if self.is_root {
            return 0.0;
        }
        let Some(best) = self.best else {
            return f64::INFINITY;
        };
        let Some(best_entry) = self.neighbors.get(best) else {
            return f64::INFINITY;
        };
        let etx_abp = best_entry.accumulated_cost();
        if !self.config.use_weighted_etx {
            return etx_abp;
        }
        let etx_bp = best_entry.etx.etx();
        let w2 = (1.0 - 1.0 / etx_bp).powi(2);
        let w1 = 1.0 - w2;
        let etx_asbp = self
            .second
            .and_then(|s| self.neighbors.get(s))
            .map_or(etx_abp, |e| e.accumulated_cost());
        w1 * etx_abp + w2 * etx_asbp
    }

    /// The join-in message the node would broadcast right now.
    pub fn join_in(&self) -> JoinIn {
        JoinIn {
            rank: self.rank,
            etx_w: self.etx_w(),
            best_parent: self.best,
            second_parent: self.second,
        }
    }

    /// Handles a received join-in broadcast. Besides evaluating the sender
    /// as a parent, this refreshes our child table from the parent ids the
    /// sender advertises (self-healing when a joined-callback was lost).
    pub fn on_join_in(
        &mut self,
        from: NodeId,
        msg: &JoinIn,
        rss: Dbm,
        now: Asn,
    ) -> Vec<RoutingEvent> {
        self.trickle.hear_consistent();
        if from == self.id {
            return Vec::new();
        }
        // A neighbor advertising infinite cost has detached; keep the entry
        // (link quality is still real) but it won't qualify as a parent.
        self.neighbors.record_advertisement(from, msg.rank, msg.etx_w, rss, now);
        let advertises_us = msg.best_parent == Some(self.id) || msg.second_parent == Some(self.id);
        if advertises_us {
            self.children.insert(from);
        } else {
            self.children.remove(&from);
        }
        if self.is_root {
            return Vec::new();
        }
        if advertises_us && (self.best == Some(from) || self.second == Some(from)) {
            // Mutual parenthood detected via advertisement: resolve it.
            return self.reevaluate(now);
        }
        self.reevaluate(now)
    }

    /// Handles a received joined-callback unicast addressed to us.
    pub fn on_joined_callback(
        &mut self,
        from: NodeId,
        cb: &JoinedCallback,
        now: Asn,
    ) -> Vec<RoutingEvent> {
        if cb.selected {
            self.children.insert(from);
            // A child cannot simultaneously be our parent: if it just
            // selected us, drop it from our parent set and re-evaluate
            // (rank updates will sort the hierarchy out).
            if self.best == Some(from) || self.second == Some(from) {
                return self.reevaluate(now);
            }
        } else {
            let _ = cb.slot; // revocations clear the child regardless of slot
            self.children.remove(&from);
        }
        Vec::new()
    }

    /// Handles the outcome of a unicast transmission to `to` (data or
    /// callback traffic): updates the link ETX and drops the parent after
    /// `parent_failure_threshold` consecutive failures.
    pub fn on_tx_result(&mut self, to: NodeId, acked: bool, now: Asn) -> Vec<RoutingEvent> {
        let Some(failures) = self.neighbors.record_tx(to, acked) else {
            return Vec::new();
        };
        let is_parent = self.best == Some(to) || self.second == Some(to);
        if is_parent && failures >= self.config.parent_failure_threshold {
            // Degrade rather than forget: the scheduler's backup route
            // already covers the short term, and wholesale removal under
            // bursty interference causes needless detach/rejoin churn.
            self.neighbors.degrade(to);
            self.lockout_until = Asn::ZERO; // failure overrides the lockout
            return self.reevaluate(now);
        }
        Vec::new()
    }

    /// Per-slot housekeeping: neighbor eviction and Trickle-paced join-in
    /// emission.
    pub fn tick(&mut self, now: Asn) -> Vec<RoutingEvent> {
        let mut events = Vec::new();
        if now.0 % 64 == u64::from(self.id.0) % 64 && now.0 >= self.config.neighbor_timeout {
            let horizon = Asn(now.0 - self.config.neighbor_timeout);
            let evicted = self.neighbors.evict_stale(horizon);
            let lost_parent =
                evicted.iter().any(|id| self.best == Some(*id) || self.second == Some(*id));
            for id in evicted {
                self.children.remove(&id);
            }
            if lost_parent {
                self.lockout_until = Asn::ZERO;
                events.extend(self.reevaluate(now));
            }
        }
        if self.trickle.tick(now) && self.is_joined() {
            events.push(RoutingEvent::BroadcastJoinIn(self.join_in()));
        }
        events
    }

    /// Re-runs parent selection over the neighbor table. Emits callbacks
    /// and telemetry, and resets Trickle, when the parent set changes.
    fn reevaluate(&mut self, now: Asn) -> Vec<RoutingEvent> {
        debug_assert!(!self.is_root, "roots never select parents");
        let old_best = self.best;
        let old_second = self.second;

        // Candidate parents: joined neighbors that are not our children and
        // whose signal is above the paper's RSSmin — links weaker than
        // -90 dBm are below the usable floor, and picking one as a parent
        // only buys a string of failed transmissions.
        let mut candidates: Vec<(NodeId, f64, Rank)> = self
            .neighbors
            .iter()
            .filter(|(id, e)| {
                !self.children.contains(id)
                    && e.rank.is_finite()
                    && e.advertised_cost.is_finite()
                    && e.last_rss.dbm() >= digs_sim::rf::RSS_MIN.dbm()
            })
            .map(|(id, e)| (id, e.accumulated_cost(), e.rank))
            .collect();
        candidates.sort_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite costs").then(a.2.cmp(&b.2)).then(a.0.cmp(&b.0))
        });

        // Best parent: minimum accumulated ETX, with hysteresis in favor of
        // the incumbent.
        let new_best = match candidates.first() {
            None => None,
            Some(&(challenger, challenger_cost, _)) => {
                // The incumbent only survives if it still passes the same
                // eligibility bar as the challengers (finite rank/cost,
                // usable RSS, not a child).
                let incumbent = old_best.and_then(|b| {
                    candidates.iter().find(|(id, _, _)| *id == b).map(|(_, cost, _)| (b, *cost))
                });
                match incumbent {
                    Some((b, cost))
                        if challenger != b
                            && (challenger_cost + self.config.hysteresis >= cost
                                || now < self.lockout_until) =>
                    {
                        Some(b)
                    }
                    _ => Some(challenger),
                }
            }
        };

        // Rank derives from the best parent.
        let new_rank = match new_best.and_then(|b| self.neighbors.get(b)) {
            Some(e) => e.rank.deeper(),
            None => Rank::INFINITE,
        };

        // Second-best parent: next-cheapest candidate with *strictly lower
        // rank than us* (paper's loop rule: same-rank links are not used).
        // The incumbent also enjoys hysteresis — backup flapping costs a
        // joined-callback exchange per flip.
        let new_second = if self.config.use_second_parent {
            let challenger = candidates
                .iter()
                .find(|(id, _, rank)| Some(*id) != new_best && *rank < new_rank)
                .map(|(id, cost, _)| (*id, *cost));
            let incumbent = old_second
                .filter(|s| Some(*s) != new_best && !self.children.contains(s))
                .and_then(|s| {
                    self.neighbors
                        .get(s)
                        .filter(|e| e.rank < new_rank && e.advertised_cost.is_finite())
                        .map(|e| (s, e.accumulated_cost()))
                });
            match (challenger, incumbent) {
                (Some((c, c_cost)), Some((i, i_cost))) => {
                    if c != i
                        && c_cost + self.config.hysteresis < i_cost
                        && now >= self.lockout_until
                    {
                        Some(c)
                    } else {
                        Some(i)
                    }
                }
                (Some((c, _)), None) => Some(c),
                (None, Some((i, _))) => Some(i),
                (None, None) => None,
            }
        } else {
            None
        };

        self.rank = new_rank;
        if new_best == old_best && new_second == old_second {
            return Vec::new();
        }
        self.best = new_best;
        self.second = new_second;
        self.parent_changes += 1;
        self.last_parent_change = Some(now);
        self.lockout_until = Asn(now.0 + self.config.switch_lockout);
        if self.joined_at.is_none() && new_best.is_some() {
            self.joined_at = Some(now);
        }
        self.trickle.reset(now);

        let mut events = Vec::new();
        for (slot, new, old) in [
            (ParentSlot::Best, new_best, old_best),
            (ParentSlot::SecondBest, new_second, old_second),
        ] {
            if new != old {
                if let Some(o) = old {
                    // Revoke unless the node still holds the other slot.
                    let still_parent = Some(o) == new_best || Some(o) == new_second;
                    if !still_parent {
                        events.push(RoutingEvent::SendJoinedCallback {
                            to: o,
                            callback: JoinedCallback { slot, selected: false },
                        });
                    }
                }
                if let Some(n) = new {
                    events.push(RoutingEvent::SendJoinedCallback {
                        to: n,
                        callback: JoinedCallback { slot, selected: true },
                    });
                }
            }
        }
        events.push(RoutingEvent::ParentsChanged { best: new_best, second: new_second });
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STRONG: Dbm = Dbm(-55.0);

    fn device(id: u16) -> DigsRouting {
        DigsRouting::new(NodeId(id), false, RoutingConfig::fast(), 42, Asn(0))
    }

    fn root(id: u16) -> DigsRouting {
        DigsRouting::new(NodeId(id), true, RoutingConfig::fast(), 42, Asn(0))
    }

    fn join_in_from(node: &DigsRouting) -> JoinIn {
        node.join_in()
    }

    #[test]
    fn root_starts_joined_with_zero_cost() {
        let r = root(0);
        assert!(r.is_joined());
        assert_eq!(r.rank(), Rank::ROOT);
        assert_eq!(r.etx_w(), 0.0);
    }

    #[test]
    fn device_starts_detached() {
        let d = device(5);
        assert!(!d.is_joined());
        assert_eq!(d.rank(), Rank::INFINITE);
        assert!(d.etx_w().is_infinite());
    }

    #[test]
    fn first_join_in_selects_best_parent() {
        let r = root(0);
        let mut d = device(5);
        let events = d.on_join_in(NodeId(0), &join_in_from(&r), STRONG, Asn(1));
        assert_eq!(d.best_parent(), Some(NodeId(0)));
        assert_eq!(d.second_best_parent(), None);
        assert_eq!(d.rank(), Rank(2));
        assert!(d.is_joined());
        assert_eq!(d.joined_at(), Some(Asn(1)));
        assert!(events.iter().any(|e| matches!(
            e,
            RoutingEvent::SendJoinedCallback { to, callback } if *to == NodeId(0) && callback.selected
        )));
    }

    #[test]
    fn second_root_becomes_backup_parent() {
        let r0 = root(0);
        let r1 = root(1);
        let mut d = device(5);
        d.on_join_in(NodeId(0), &join_in_from(&r0), STRONG, Asn(1));
        let events = d.on_join_in(NodeId(1), &join_in_from(&r1), Dbm(-70.0), Asn(2));
        assert_eq!(d.best_parent(), Some(NodeId(0)));
        assert_eq!(d.second_best_parent(), Some(NodeId(1)));
        assert!(events.iter().any(|e| matches!(
            e,
            RoutingEvent::SendJoinedCallback { to, .. } if *to == NodeId(1)
        )));
    }

    #[test]
    fn cheaper_parent_takes_over_best() {
        let mut d = device(5);
        // Expensive first route: weak link to a rank-2 node with a costly
        // path (accumulated ETX ≈ 2.9 + 3.0 ≈ 5.9)…
        d.on_join_in(
            NodeId(9),
            &JoinIn { rank: Rank(2), etx_w: 3.0, best_parent: None, second_parent: None },
            Dbm(-88.0),
            Asn(1),
        );
        assert_eq!(d.best_parent(), Some(NodeId(9)));
        assert_eq!(d.rank(), Rank(3));
        // …then, once the voluntary-switch lockout has expired, a strong
        // direct link to a root (accumulated ≈ 1.0) beats the incumbent by
        // far more than the hysteresis margin.
        let after_lockout = Asn(2 + RoutingConfig::fast().switch_lockout);
        d.on_join_in(
            NodeId(0),
            &JoinIn { rank: Rank::ROOT, etx_w: 0.0, best_parent: None, second_parent: None },
            STRONG,
            after_lockout,
        );
        assert_eq!(d.best_parent(), Some(NodeId(0)));
        assert_eq!(d.rank(), Rank(2));
        // No eligible backup remains: node 9's rank 2 is not strictly
        // below our new rank 2.
        assert_eq!(d.second_best_parent(), None);
    }

    #[test]
    fn hysteresis_keeps_incumbent_on_marginal_improvement() {
        let mut d = device(5);
        d.on_join_in(
            NodeId(0),
            &JoinIn { rank: Rank::ROOT, etx_w: 0.0, best_parent: None, second_parent: None },
            Dbm(-75.0),
            Asn(1),
        );
        let incumbent_cost = d.accumulated_etx(NodeId(0)).expect("known");
        // A challenger 0.1 cheaper: inside the hysteresis band.
        d.on_join_in(
            NodeId(9),
            &JoinIn {
                rank: Rank::ROOT,
                etx_w: incumbent_cost - 1.0 - 0.1,
                best_parent: None,
                second_parent: None,
            },
            STRONG,
            Asn(2),
        );
        assert_eq!(d.best_parent(), Some(NodeId(0)), "marginal challenger must not win");
    }

    #[test]
    fn same_rank_neighbor_never_becomes_backup() {
        // Paper example: #5 and #6 both rank 2; their mutual link is unused.
        let mut d = device(5);
        d.on_join_in(
            NodeId(0),
            &JoinIn { rank: Rank::ROOT, etx_w: 0.0, best_parent: None, second_parent: None },
            STRONG,
            Asn(1),
        );
        assert_eq!(d.rank(), Rank(2));
        d.on_join_in(
            NodeId(6),
            &JoinIn { rank: Rank(2), etx_w: 1.0, best_parent: None, second_parent: None },
            STRONG,
            Asn(2),
        );
        assert_eq!(d.second_best_parent(), None, "same-rank node is not eligible");
    }

    #[test]
    fn child_is_excluded_from_parent_candidacy() {
        let mut d = device(5);
        d.on_join_in(
            NodeId(0),
            &JoinIn { rank: Rank::ROOT, etx_w: 0.0, best_parent: None, second_parent: None },
            STRONG,
            Asn(1),
        );
        // Node 8 selects us as parent.
        d.on_joined_callback(
            NodeId(8),
            &JoinedCallback { slot: ParentSlot::Best, selected: true },
            Asn(2),
        );
        // Node 8 later advertises a tempting cost — but it's our child.
        d.on_join_in(
            NodeId(8),
            &JoinIn { rank: Rank(3), etx_w: 0.1, best_parent: None, second_parent: None },
            STRONG,
            Asn(3),
        );
        assert_eq!(d.best_parent(), Some(NodeId(0)));
        assert_ne!(d.second_best_parent(), Some(NodeId(8)));
    }

    #[test]
    fn parent_loss_promotes_backup() {
        let r0 = root(0);
        let r1 = root(1);
        let mut d = device(5);
        d.on_join_in(NodeId(0), &join_in_from(&r0), STRONG, Asn(1));
        d.on_join_in(NodeId(1), &join_in_from(&r1), Dbm(-70.0), Asn(2));
        assert_eq!(d.best_parent(), Some(NodeId(0)));
        // Consecutive failures up to the threshold degrade the primary;
        // the backup takes over.
        let threshold = RoutingConfig::fast().parent_failure_threshold;
        let mut promoted = false;
        for i in 0..u64::from(threshold) {
            let events = d.on_tx_result(NodeId(0), false, Asn(10 + i));
            promoted |= events
                .iter()
                .any(|e| matches!(e, RoutingEvent::ParentsChanged { best: Some(b), .. } if *b == NodeId(1)));
        }
        assert!(promoted, "backup must take over after threshold failures");
        assert_eq!(d.best_parent(), Some(NodeId(1)));
    }

    #[test]
    fn degraded_sole_parent_is_kept_not_dropped() {
        // With no alternative route, threshold failures degrade the link
        // estimate but the node stays attached — detachment would only
        // make things worse, and the neighbor-timeout eviction handles
        // genuinely dead parents.
        let r0 = root(0);
        let mut d = device(5);
        d.on_join_in(NodeId(0), &join_in_from(&r0), STRONG, Asn(1));
        let etx_before = d.neighbors().get(NodeId(0)).expect("entry").etx.etx();
        let threshold = RoutingConfig::fast().parent_failure_threshold;
        for i in 0..u64::from(threshold) {
            d.on_tx_result(NodeId(0), false, Asn(10 + i));
        }
        assert!(d.is_joined(), "sole parent is kept");
        assert_eq!(d.best_parent(), Some(NodeId(0)));
        let etx_after = d.neighbors().get(NodeId(0)).expect("entry").etx.etx();
        assert!(etx_after > etx_before + 5.0, "link estimate degraded to cap");
    }

    #[test]
    fn detaches_when_parent_goes_silent() {
        // A dead parent stops advertising; the neighbor timeout evicts it
        // and the node detaches.
        let r0 = root(0);
        let mut d = device(5);
        d.on_join_in(NodeId(0), &join_in_from(&r0), STRONG, Asn(1));
        assert!(d.is_joined());
        let timeout = RoutingConfig::fast().neighbor_timeout;
        // Tick far past the eviction horizon (eviction runs when
        // now % 64 == id % 64).
        let mut now = timeout + 64;
        while now % 64 != 5 {
            now += 1;
        }
        d.tick(Asn(now));
        assert!(!d.is_joined());
        assert_eq!(d.rank(), Rank::INFINITE);
        assert!(d.etx_w().is_infinite());
    }

    #[test]
    fn weighted_etx_matches_equations() {
        let mut d = device(5);
        d.on_join_in(
            NodeId(0),
            &JoinIn { rank: Rank::ROOT, etx_w: 0.0, best_parent: None, second_parent: None },
            Dbm(-75.0),
            Asn(1),
        );
        d.on_join_in(
            NodeId(1),
            &JoinIn { rank: Rank::ROOT, etx_w: 0.0, best_parent: None, second_parent: None },
            Dbm(-80.0),
            Asn(2),
        );
        let etx_bp = d.neighbors().get(NodeId(0)).expect("entry").etx.etx();
        let etx_abp = d.accumulated_etx(NodeId(0)).expect("known");
        let etx_asbp = d.accumulated_etx(NodeId(1)).expect("known");
        let w2 = (1.0 - 1.0 / etx_bp).powi(2);
        let w1 = 1.0 - w2;
        let expected = w1 * etx_abp + w2 * etx_asbp;
        assert!((d.etx_w() - expected).abs() < 1e-9);
        // Sanity: weighted cost lies between the two path costs.
        assert!(d.etx_w() >= etx_abp - 1e-9);
        assert!(d.etx_w() <= etx_asbp + 1e-9);
    }

    #[test]
    fn weighted_etx_without_backup_equals_primary_cost() {
        let mut d = device(5);
        d.on_join_in(
            NodeId(0),
            &JoinIn { rank: Rank::ROOT, etx_w: 0.0, best_parent: None, second_parent: None },
            Dbm(-75.0),
            Asn(1),
        );
        let etx_abp = d.accumulated_etx(NodeId(0)).expect("known");
        assert!((d.etx_w() - etx_abp).abs() < 1e-9);
    }

    #[test]
    fn ablation_single_path_has_no_backup() {
        let mut config = RoutingConfig::fast();
        config.use_second_parent = false;
        let mut d = DigsRouting::new(NodeId(5), false, config, 42, Asn(0));
        d.on_join_in(
            NodeId(0),
            &JoinIn { rank: Rank::ROOT, etx_w: 0.0, best_parent: None, second_parent: None },
            STRONG,
            Asn(1),
        );
        d.on_join_in(
            NodeId(1),
            &JoinIn { rank: Rank::ROOT, etx_w: 0.0, best_parent: None, second_parent: None },
            STRONG,
            Asn(2),
        );
        assert!(d.best_parent().is_some());
        assert_eq!(d.second_best_parent(), None);
    }

    #[test]
    fn trickle_emits_join_ins_once_joined() {
        let r0 = root(0);
        let mut d = device(5);
        let mut emitted = 0;
        for s in 0..100u64 {
            if s == 1 {
                d.on_join_in(NodeId(0), &join_in_from(&r0), STRONG, Asn(s));
            }
            emitted += d
                .tick(Asn(s))
                .iter()
                .filter(|e| matches!(e, RoutingEvent::BroadcastJoinIn(_)))
                .count();
        }
        assert!(emitted > 0, "joined node must advertise");
    }

    #[test]
    fn detached_node_does_not_advertise() {
        let mut d = device(5);
        for s in 0..200u64 {
            let events = d.tick(Asn(s));
            assert!(
                !events.iter().any(|e| matches!(e, RoutingEvent::BroadcastJoinIn(_))),
                "detached node advertised at slot {s}"
            );
        }
    }

    #[test]
    fn callback_from_parent_resolves_conflict() {
        let mut d = device(5);
        d.on_join_in(
            NodeId(7),
            &JoinIn { rank: Rank(2), etx_w: 1.0, best_parent: None, second_parent: None },
            STRONG,
            Asn(1),
        );
        assert_eq!(d.best_parent(), Some(NodeId(7)));
        // Node 7 (erroneously, e.g. after its own parent loss) picks us.
        d.on_joined_callback(
            NodeId(7),
            &JoinedCallback { slot: ParentSlot::Best, selected: true },
            Asn(2),
        );
        assert_ne!(d.best_parent(), Some(NodeId(7)), "mutual parenthood must break");
    }

    #[test]
    fn parent_changes_counted() {
        let r0 = root(0);
        let r1 = root(1);
        let mut d = device(5);
        assert_eq!(d.parent_changes(), 0);
        d.on_join_in(NodeId(0), &join_in_from(&r0), STRONG, Asn(1));
        assert_eq!(d.parent_changes(), 1);
        d.on_join_in(NodeId(1), &join_in_from(&r1), STRONG, Asn(2));
        assert_eq!(d.parent_changes(), 2);
        assert_eq!(d.last_parent_change(), Some(Asn(2)));
    }
}
