//! The Trickle algorithm (RFC 6206).
//!
//! Trickle paces the join-in (DiGS) and DIO (RPL) broadcasts: the interval
//! starts at `Imin`, doubles up to `Imax` while the network is consistent,
//! and snaps back to `Imin` whenever an inconsistency is detected (in DiGS,
//! a change of the node's best or second-best parent). Within each interval
//! the node picks a uniformly random firing point in the second half and
//! suppresses its transmission if it has already heard `k` consistent
//! messages this interval.

use digs_sim::rng;
use digs_sim::time::Asn;

/// Trickle timer configuration, in slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TrickleConfig {
    /// Minimum interval length, in slots.
    pub imin: u64,
    /// Maximum interval length, in slots.
    pub imax: u64,
    /// Redundancy constant: suppress transmission after hearing this many
    /// consistent messages in the current interval. **0 disables
    /// suppression** — the right choice for DiGS join-ins, where every
    /// node's `(rank, ETXw)` advertisement is unique information a
    /// neighbor's message cannot substitute for (suppression would starve
    /// parent discovery in dense networks).
    pub k: u32,
}

impl TrickleConfig {
    /// Defaults matching the experiments: Imin = 1 s, Imax = 64 s, no
    /// suppression.
    pub fn standard() -> TrickleConfig {
        TrickleConfig { imin: 100, imax: 6400, k: 0 }
    }

    /// A fast profile for unit tests.
    pub fn fast() -> TrickleConfig {
        TrickleConfig { imin: 4, imax: 32, k: 2 }
    }
}

/// A Trickle timer instance.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Trickle {
    config: TrickleConfig,
    seed: u64,
    /// Current interval length in slots.
    interval: u64,
    /// ASN at which the current interval began.
    interval_start: Asn,
    /// Firing slot within the current interval (absolute).
    fire_at: Asn,
    /// Consistent messages heard this interval.
    counter: u32,
    /// Whether we already fired this interval.
    fired: bool,
    /// Monotone counter making each interval's firing point differ.
    epoch: u64,
}

impl Trickle {
    /// Creates a timer starting its first interval at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (`imin` = 0 or
    /// `imax < imin`).
    pub fn new(config: TrickleConfig, seed: u64, now: Asn) -> Trickle {
        assert!(config.imin > 0, "Imin must be positive");
        assert!(config.imax >= config.imin, "Imax must be at least Imin");
        let mut t = Trickle {
            config,
            seed,
            interval: config.imin,
            interval_start: now,
            fire_at: now,
            counter: 0,
            fired: false,
            epoch: 0,
        };
        t.schedule_fire();
        t
    }

    fn schedule_fire(&mut self) {
        // Uniform in [I/2, I).
        let half = self.interval / 2;
        let span = (self.interval - half).max(1);
        let r = rng::mix(self.seed, self.epoch, self.interval, 0xf17e) % span;
        self.fire_at = Asn(self.interval_start.0 + half + r);
    }

    /// Current interval length in slots.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Notes a consistent message heard from a neighbor.
    pub fn hear_consistent(&mut self) {
        self.counter = self.counter.saturating_add(1);
    }

    /// Resets to `Imin` (inconsistency detected: e.g. a parent change).
    pub fn reset(&mut self, now: Asn) {
        if self.interval != self.config.imin {
            self.interval = self.config.imin;
            self.begin_interval(now);
        } else if self.fired {
            // Already at Imin and spent: start a fresh Imin interval so the
            // update propagates promptly.
            self.begin_interval(now);
        }
    }

    fn begin_interval(&mut self, now: Asn) {
        self.interval_start = now;
        self.counter = 0;
        self.fired = false;
        self.epoch += 1;
        self.schedule_fire();
    }

    /// Advances to slot `now`; returns `true` if the timer fires in this
    /// slot (the caller should then broadcast its message).
    pub fn tick(&mut self, now: Asn) -> bool {
        // Interval rollover (possibly several if the caller skipped slots).
        while now.0 >= self.interval_start.0 + self.interval {
            let end = self.interval_start.0 + self.interval;
            self.interval = (self.interval * 2).min(self.config.imax);
            self.interval_start = Asn(end);
            self.counter = 0;
            self.fired = false;
            self.epoch += 1;
            self.schedule_fire();
        }
        let suppressed = self.config.k != 0 && self.counter >= self.config.k;
        if !self.fired && now >= self.fire_at && !suppressed {
            self.fired = true;
            return true;
        }
        if now >= self.fire_at {
            self.fired = true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_fires(t: &mut Trickle, from: u64, to: u64) -> usize {
        (from..to).filter(|s| t.tick(Asn(*s))).count()
    }

    #[test]
    fn fires_once_per_interval_without_suppression() {
        let cfg = TrickleConfig { imin: 10, imax: 10, k: 100 };
        let mut t = Trickle::new(cfg, 1, Asn(0));
        let fires = count_fires(&mut t, 0, 100);
        // 10 intervals of 10 slots each → ~10 fires (first interval included).
        assert!((9..=11).contains(&fires), "fires = {fires}");
    }

    #[test]
    fn interval_doubles_until_imax() {
        let cfg = TrickleConfig { imin: 4, imax: 64, k: 100 };
        let mut t = Trickle::new(cfg, 2, Asn(0));
        for s in 0..1000 {
            t.tick(Asn(s));
        }
        assert_eq!(t.interval(), 64);
    }

    #[test]
    fn reset_snaps_back_to_imin() {
        let cfg = TrickleConfig { imin: 4, imax: 64, k: 100 };
        let mut t = Trickle::new(cfg, 3, Asn(0));
        for s in 0..500 {
            t.tick(Asn(s));
        }
        assert_eq!(t.interval(), 64);
        t.reset(Asn(500));
        assert_eq!(t.interval(), 4);
        // Fires again quickly after reset.
        let fired = (500..510).any(|s| t.tick(Asn(s)));
        assert!(fired, "should fire within Imin after reset");
    }

    #[test]
    fn suppression_by_redundancy() {
        let cfg = TrickleConfig { imin: 10, imax: 10, k: 1 };
        let mut t = Trickle::new(cfg, 4, Asn(0));
        let mut fires = 0;
        for s in 0..200u64 {
            if t.tick(Asn(s)) {
                fires += 1;
            }
            // Hear a consistent message early in every interval (after the
            // boundary tick so it lands in the new interval).
            if s % 10 == 0 {
                t.hear_consistent();
            }
        }
        assert_eq!(fires, 0, "k=1 with a chatty neighbor suppresses everything");
    }

    #[test]
    fn firing_point_in_second_half() {
        let cfg = TrickleConfig { imin: 100, imax: 100, k: 100 };
        for seed in 0..20 {
            let mut t = Trickle::new(cfg, seed, Asn(0));
            let fire_slot = (0..100u64).find(|s| t.tick(Asn(*s)));
            let fire_slot = fire_slot.expect("fires in first interval");
            assert!(fire_slot >= 50, "fired at {fire_slot}, expected ≥ 50");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = TrickleConfig::fast();
        let mut a = Trickle::new(cfg, 7, Asn(0));
        let mut b = Trickle::new(cfg, 7, Asn(0));
        for s in 0..200 {
            assert_eq!(a.tick(Asn(s)), b.tick(Asn(s)));
        }
    }

    #[test]
    fn different_seeds_desynchronise() {
        let cfg = TrickleConfig { imin: 100, imax: 100, k: 100 };
        let fire = |seed| {
            let mut t = Trickle::new(cfg, seed, Asn(0));
            (0..100u64).find(|s| t.tick(Asn(*s))).unwrap_or(u64::MAX)
        };
        let distinct: std::collections::HashSet<u64> = (0..10).map(fire).collect();
        assert!(distinct.len() > 3, "firing points should spread out");
    }

    #[test]
    #[should_panic(expected = "Imin must be positive")]
    fn zero_imin_panics() {
        let _ = Trickle::new(TrickleConfig { imin: 0, imax: 4, k: 1 }, 0, Asn(0));
    }
}
