//! # digs-routing — distributed graph routing for industrial WSANs
//!
//! This crate implements the routing layer of the DiGS (ICDCS 2018)
//! reproduction:
//!
//! - [`etx`] — per-link expected-transmission-count estimation, initialised
//!   from received signal strength exactly as the paper specifies (-60 dBm →
//!   ETX 1, -90 dBm → ETX 3, linear in between) and penalised on missed
//!   acknowledgements;
//! - [`trickle`] — the Trickle timer (RFC 6206) governing join-in / DIO
//!   emission;
//! - [`messages`] — the join-in, joined-callback, and DIO wire messages;
//! - [`neighbor`] — the neighbor table shared by both protocols;
//! - [`digs`] — **the paper's contribution**: the distributed graph routing
//!   state machine of Algorithm 1, in which every field device selects a
//!   best and a second-best parent toward the access points, computes its
//!   weighted ETX (Eq. 1–3), and announces itself via Trickle-paced join-in
//!   broadcasts;
//! - [`rpl`] — the RPL baseline (single preferred parent) that the Orchestra
//!   comparison runs on;
//! - [`graph`] — routing-graph snapshots and DAG/reachability validation
//!   used by tests, the centralized baseline, and the experiment harness.
//!
//! All protocol state machines here are sans-I/O: they consume events
//! (received messages, transmission outcomes, slot ticks) and emit
//! [`messages::RoutingEvent`]s; the `digs` crate maps those
//! onto simulator frames.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digs;
pub mod etx;
pub mod graph;
pub mod messages;
pub mod neighbor;
pub mod rpl;
pub mod trickle;

pub use digs::{DigsRouting, RoutingConfig};
pub use graph::RoutingGraph;
pub use messages::{JoinIn, JoinedCallback, Rank, RoutingEvent};
pub use rpl::RplRouting;
