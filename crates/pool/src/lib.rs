//! A std-only worker pool for fanning independent simulations out over
//! the available cores.
//!
//! Each task is one deterministic simulation: tasks share no mutable
//! state, so a plain channel-fed pool is all the parallelism the
//! conformance matrix, the benchmarks, and the fleet runner need.
//! Results come back in input order regardless of completion order, and
//! per-task wall-clock durations are captured so callers can report their
//! serial-equivalent time (the sum of per-run durations) next to the
//! actual wall clock.
//!
//! A panicking task does not surface as a bare `Option::unwrap` on the
//! collector: every task carries a label (scenario/seed for the gate,
//! network label for the fleet), the worker catches the unwind, and the
//! pool re-panics on the caller's thread with the failing task's label
//! and panic message — see [`par_map_labeled`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Output of [`par_map_timed`] for one task.
#[derive(Debug, Clone)]
pub struct Timed<T> {
    /// The task's result.
    pub value: T,
    /// How long the task ran on its worker.
    pub elapsed: Duration,
}

/// Default worker count: one per available core, capped by the task
/// count.
pub fn default_jobs(tasks: usize) -> usize {
    thread::available_parallelism().map_or(1, |n| n.get()).min(tasks.max(1))
}

/// Runs `f` over `items` on `jobs` worker threads and returns the
/// results in input order. With `jobs <= 1` (or a single item) the work
/// runs inline on the caller's thread — same results, no threads.
pub fn par_map<I, O, F>(items: Vec<I>, jobs: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Send + Sync,
{
    par_map_timed(items, jobs, f).into_iter().map(|t| t.value).collect()
}

/// Like [`par_map`], but also reports each task's wall-clock duration.
pub fn par_map_timed<I, O, F>(items: Vec<I>, jobs: usize, f: F) -> Vec<Timed<O>>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Send + Sync,
{
    par_map_labeled(items, jobs, |index, _| format!("task {index}"), f)
}

/// Like [`par_map_timed`], but each task carries a caller-supplied label
/// (computed up front from the task's index and input). If a task
/// panics, the pool finishes draining, then re-panics on the caller's
/// thread with the first failing task's label and panic message instead
/// of a bare "every task completed" expectation failure.
///
/// # Panics
///
/// Re-panics (with the label attached) if any task panicked.
pub fn par_map_labeled<I, O, F, L>(items: Vec<I>, jobs: usize, label: L, f: F) -> Vec<Timed<O>>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Send + Sync,
    L: Fn(usize, &I) -> String,
{
    let labels: Vec<String> =
        items.iter().enumerate().map(|(index, item)| label(index, item)).collect();
    let jobs = jobs.min(items.len()).max(1);
    if jobs == 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(index, item)| {
                let start = Instant::now();
                let value = run_caught(&f, item)
                    .unwrap_or_else(|msg| panic!("{}", failure(&labels[index], &msg)));
                Timed { value, elapsed: start.elapsed() }
            })
            .collect();
    }

    let n = items.len();
    let (task_tx, task_rx) = mpsc::channel::<(usize, I)>();
    let task_rx = Arc::new(Mutex::new(task_rx));
    let (res_tx, res_rx) = mpsc::channel::<(usize, Result<Timed<O>, String>)>();
    for task in items.into_iter().enumerate() {
        task_tx.send(task).expect("queue open");
    }
    drop(task_tx);

    // Scoped threads: borrow `f` instead of requiring 'static closures.
    let mut results: Vec<Option<Timed<O>>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut failed: Option<(usize, String)> = None;
    thread::scope(|scope| {
        for _ in 0..jobs {
            let task_rx = Arc::clone(&task_rx);
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move || loop {
                let (index, item) = {
                    let guard = task_rx.lock().expect("not poisoned");
                    match guard.recv() {
                        Ok(task) => task,
                        Err(_) => break,
                    }
                };
                let start = Instant::now();
                let outcome =
                    run_caught(f, item).map(|value| Timed { value, elapsed: start.elapsed() });
                if res_tx.send((index, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);
        for (index, outcome) in res_rx {
            match outcome {
                Ok(timed) => results[index] = Some(timed),
                Err(msg) => {
                    // Keep the earliest task (by input order) so the report
                    // is stable regardless of completion order.
                    if failed.as_ref().is_none_or(|(i, _)| index < *i) {
                        failed = Some((index, msg));
                    }
                }
            }
        }
    });
    if let Some((index, msg)) = failed {
        panic!("{}", failure(&labels[index], &msg));
    }
    results.into_iter().map(|r| r.expect("every task completed")).collect()
}

/// Runs one task, converting an unwind into the panic payload's message.
fn run_caught<I, O, F: Fn(I) -> O>(f: &F, item: I) -> Result<O, String> {
    catch_unwind(AssertUnwindSafe(|| f(item))).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

fn failure(label: &str, msg: &str) -> String {
    format!("worker task `{label}` panicked: {msg}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let out = par_map((0..64u64).collect(), 4, |x| x * x);
        assert_eq!(out, (0..64u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_inline() {
        let out = par_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn timed_durations_are_recorded() {
        let out = par_map_timed(vec![10u64, 20], 2, |x| {
            thread::sleep(Duration::from_millis(x));
            x
        });
        assert_eq!(out.len(), 2);
        for t in &out {
            assert!(t.elapsed >= Duration::from_millis(t.value / 2));
        }
    }

    #[test]
    fn borrows_environment_without_static() {
        let factor = 3u64;
        let out = par_map(vec![1, 2], 2, |x| x * factor);
        assert_eq!(out, vec![3, 6]);
    }

    /// Captures the labeled re-panic a failing task must produce.
    fn panic_message(result: std::thread::Result<Vec<Timed<u32>>>) -> String {
        let payload = result.expect_err("a panicking task must propagate");
        payload
            .downcast_ref::<String>()
            .cloned()
            .expect("the pool re-panics with a formatted String")
    }

    #[test]
    fn panicking_task_surfaces_its_label_threaded() {
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            par_map_labeled(
                vec![1u32, 2, 3, 4],
                2,
                |_, item| format!("scenario-x/seed{item}"),
                |x| if x == 3 { panic!("boom at {x}") } else { x },
            )
        })));
        assert!(msg.contains("scenario-x/seed3"), "label missing: {msg}");
        assert!(msg.contains("boom at 3"), "panic message missing: {msg}");
    }

    #[test]
    fn panicking_task_surfaces_its_label_inline() {
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            par_map_labeled(
                vec![7u32],
                1,
                |index, item| format!("run{index}-item{item}"),
                |_| -> u32 { panic!("inline failure") },
            )
        })));
        assert!(msg.contains("run0-item7"), "label missing: {msg}");
        assert!(msg.contains("inline failure"), "panic message missing: {msg}");
    }

    #[test]
    fn earliest_failing_task_wins_the_report() {
        // Both tasks panic; the pool must report the one earliest in
        // input order no matter which worker finished first.
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            par_map_labeled(
                vec![1u32, 2],
                2,
                |index, _| format!("task-{index}"),
                |x| -> u32 { panic!("fail {x}") },
            )
        })));
        assert!(msg.contains("task-0"), "earliest task must be reported: {msg}");
    }

    #[test]
    fn surviving_tasks_complete_despite_a_failure() {
        // The re-panic happens after the drain: no worker is left holding
        // a task, and the panic is the labeled one (not a send error).
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            par_map_labeled(
                (0..32u32).collect(),
                4,
                |index, _| format!("t{index}"),
                |x| if x == 31 { panic!("late failure") } else { x },
            )
        })));
        assert!(msg.contains("t31"), "late failure must still be labeled: {msg}");
    }
}
