//! Workspace root crate for the DiGS reproduction.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; all functionality lives in the member crates:
//!
//! - [`digs_sim`] — the WSAN simulation substrate,
//! - [`digs_routing`] — ETX, Trickle, RPL, and DiGS distributed graph routing,
//! - [`digs_scheduling`] — TSCH slotframes, the DiGS autonomous scheduler, Orchestra,
//! - [`digs_whart`] — the centralized WirelessHART baseline,
//! - [`digs`] — the integrated protocol stacks and experiment harness,
//! - [`digs_metrics`] — the statistics toolkit.

pub use digs;
pub use digs_metrics;
pub use digs_routing;
pub use digs_scheduling;
pub use digs_sim;
pub use digs_whart;
